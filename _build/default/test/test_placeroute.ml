module L = Techmap.Lutgraph

let check = Alcotest.check

let mapped_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  (net, lg)

let test_arch_monotone_wire () =
  check Alcotest.bool "monotone" true (Placeroute.Arch.wire_delay 10 > Placeroute.Arch.wire_delay 1);
  check Alcotest.bool "positive at zero" true (Placeroute.Arch.wire_delay 0 > 0.)

let test_arch_grid_side () =
  check Alcotest.bool "fits" true (Placeroute.Arch.grid_side 100 * Placeroute.Arch.grid_side 100 >= 100);
  check Alcotest.bool "min side" true (Placeroute.Arch.grid_side 1 >= 1)

let test_place_deterministic () =
  let net, lg = mapped_fig2 () in
  let p1 = Placeroute.Place.run ~seed:5 net lg in
  let p2 = Placeroute.Place.run ~seed:5 net lg in
  check Alcotest.int "same wirelength" p1.Placeroute.Place.wirelength p2.Placeroute.Place.wirelength

let test_place_seed_matters () =
  let net, lg = mapped_fig2 () in
  let p1 = Placeroute.Place.run ~seed:1 net lg in
  let p2 = Placeroute.Place.run ~seed:2 net lg in
  (* not strictly guaranteed, but overwhelmingly likely on this size *)
  check Alcotest.bool "different result" true
    (p1.Placeroute.Place.wirelength <> p2.Placeroute.Place.wirelength
    || p1.Placeroute.Place.pos <> p2.Placeroute.Place.pos)

let test_place_effort_improves () =
  let net, lg = mapped_fig2 () in
  let weak = Placeroute.Place.run ~seed:3 ~effort:0.05 net lg in
  let strong = Placeroute.Place.run ~seed:3 ~effort:2.0 net lg in
  check Alcotest.bool "more effort, no worse" true
    (strong.Placeroute.Place.wirelength <= weak.Placeroute.Place.wirelength + 5)

let test_sta_cp_lower_bound () =
  let net, lg = mapped_fig2 () in
  let r = Placeroute.Sta.analyze ~seed:7 net lg in
  (* cp >= levels * lut_delay: wires only add *)
  check Alcotest.bool "cp dominates pure logic" true
    (r.Placeroute.Sta.cp
    >= (float_of_int lg.L.max_level *. Placeroute.Arch.lut_delay) -. 1e-9);
  check Alcotest.int "levels carried" lg.L.max_level r.Placeroute.Sta.logic_levels;
  check Alcotest.int "luts counted" (L.n_luts lg) r.Placeroute.Sta.n_luts;
  check Alcotest.int "ffs counted" (Net.count_ffs net) r.Placeroute.Sta.n_ffs

let test_sta_deterministic () =
  let net, lg = mapped_fig2 () in
  let a = Placeroute.Sta.analyze ~seed:7 net lg in
  let b = Placeroute.Sta.analyze ~seed:7 net lg in
  check (Alcotest.float 1e-9) "same cp" a.Placeroute.Sta.cp b.Placeroute.Sta.cp

let test_distance_metric () =
  let net, lg = mapped_fig2 () in
  let p = Placeroute.Place.run ~seed:1 net lg in
  (* distance is symmetric and zero to itself *)
  match lg.L.edges with
  | { L.e_src; e_dst } :: _ ->
    let a = Placeroute.Place.item_of_endpoint e_src in
    let b = Placeroute.Place.item_of_endpoint e_dst in
    check Alcotest.int "symmetric" (Placeroute.Place.distance p a b) (Placeroute.Place.distance p b a);
    check Alcotest.int "self distance" 0 (Placeroute.Place.distance p a a)
  | [] -> Alcotest.fail "no edges"

let suite =
  [
    ("arch wire delay monotone", `Quick, test_arch_monotone_wire);
    ("arch grid side", `Quick, test_arch_grid_side);
    ("placement deterministic", `Quick, test_place_deterministic);
    ("placement seed sensitivity", `Quick, test_place_seed_matters);
    ("placement effort helps", `Quick, test_place_effort_improves);
    ("sta cp lower bound", `Quick, test_sta_cp_lower_bound);
    ("sta deterministic", `Quick, test_sta_deterministic);
    ("distance metric", `Quick, test_distance_metric);
  ]
