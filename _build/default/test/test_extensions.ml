(* Tests for the extension features: LUT truth tables + post-mapping
   equivalence, BLIF export, VCD tracing, slack matching, and the
   routing-aware timing mode. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module L = Techmap.Lutgraph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let mapped_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  (g, net, synth, Techmap.Mapper.run synth)

(* ------------------------------------------------------------------ *)
(* truth tables / equivalence *)

let test_truth_simple_and () =
  let net = Net.create "t" in
  let a = Net.input net ~owner:0 ~dom:Net.Data "a" in
  let b = Net.input net ~owner:0 ~dom:Net.Data "b" in
  ignore (Net.output net ~owner:0 "y" (Net.and2 net ~owner:0 a b));
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  check Alcotest.int "one lut" 1 (L.n_luts lg);
  (* AND of two leaves: table 1000b = 8, whichever leaf order *)
  check Alcotest.int64 "and table" 8L (Techmap.Truth.lut_table lg 0)

let test_truth_xor_table () =
  let net = Net.create "t" in
  let a = Net.input net ~owner:0 ~dom:Net.Data "a" in
  let b = Net.input net ~owner:0 ~dom:Net.Data "b" in
  ignore (Net.output net ~owner:0 "y" (Net.xor2 net ~owner:0 a b));
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  (* the AIG expresses XOR with a complemented output literal, so the
     LUT root node computes XNOR (1001b); the inversion lives on the
     combinational-output literal and the equivalence check covers it *)
  check Alcotest.int64 "xnor root table" 9L (Techmap.Truth.lut_table lg 0);
  check Alcotest.bool "still equivalent" true (Techmap.Truth.equivalent ~vectors:16 lg)

let test_equivalence_fig2 () =
  let _, _, _, lg = mapped_fig2 () in
  check Alcotest.bool "mapping preserves function" true (Techmap.Truth.equivalent ~vectors:64 lg)

(* property: mapping of random netlists is functionally equivalent *)
let prop_equivalence_random =
  QCheck.Test.make ~name:"LUT mapping equivalent to AIG" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let net = Net.create "rand" in
      let n_in = 3 + Support.Rng.int rng 5 in
      let ins =
        Array.init n_in (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i))
      in
      let pool = ref (Array.to_list ins) in
      let pick () = List.nth !pool (Support.Rng.int rng (List.length !pool)) in
      for _ = 1 to 30 do
        let a = pick () and b = pick () in
        let gate =
          match Support.Rng.int rng 4 with
          | 0 -> Net.and2 net ~owner:0 a b
          | 1 -> Net.or2 net ~owner:0 a b
          | 2 -> Net.xor2 net ~owner:0 a b
          | _ -> Net.mux2 net ~owner:0 ~sel:(pick ()) a b
        in
        pool := gate :: !pool
      done;
      ignore (Net.output net ~owner:0 "y0" (pick ()));
      ignore (Net.output net ~owner:0 "y1" (pick ()));
      let synth = Techmap.Synth.run net in
      let lg = Techmap.Mapper.run synth in
      Techmap.Truth.equivalent ~vectors:64 ~seed lg)

(* ------------------------------------------------------------------ *)
(* balance pass *)

let test_balance_reduces_chain_depth () =
  let net = Net.create "chain" in
  let ins = Array.init 16 (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i)) in
  let acc = ref ins.(0) in
  for i = 1 to 15 do
    acc := Net.and2 net ~owner:0 !acc ins.(i)
  done;
  ignore (Net.output net ~owner:0 "y" !acc);
  let synth = Techmap.Synth.run net in
  let balanced = Techmap.Balance.run synth in
  check Alcotest.int "chain depth" 15 (Techmap.Aig.depth synth.Techmap.Synth.aig);
  check Alcotest.int "balanced depth" 4 (Techmap.Aig.depth balanced.Techmap.Synth.aig);
  (* function preserved end to end: map the balanced AIG and check it *)
  let lg = Techmap.Mapper.run balanced in
  check Alcotest.bool "equivalent after mapping" true (Techmap.Truth.equivalent ~vectors:64 lg)

(* property: balancing random netlists never increases depth and the
   original and balanced AIGs agree on all outputs *)
let prop_balance_preserves_function =
  QCheck.Test.make ~name:"balance preserves function, never deepens" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let net = Net.create "rand" in
      let n_in = 3 + Support.Rng.int rng 4 in
      let ins =
        Array.init n_in (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i))
      in
      let pool = ref (Array.to_list ins) in
      let pick () = List.nth !pool (Support.Rng.int rng (List.length !pool)) in
      for _ = 1 to 25 do
        let a = pick () and b = pick () in
        let gate =
          match Support.Rng.int rng 3 with
          | 0 -> Net.and2 net ~owner:0 a b
          | 1 -> Net.or2 net ~owner:0 a b
          | _ -> Net.xor2 net ~owner:0 a b
        in
        pool := gate :: !pool
      done;
      ignore (Net.output net ~owner:0 "y" (pick ()));
      let synth = Techmap.Synth.run net in
      let balanced = Techmap.Balance.run synth in
      if Techmap.Aig.depth balanced.Techmap.Synth.aig > Techmap.Aig.depth synth.Techmap.Synth.aig
      then false
      else begin
        (* compare on all input assignments via the shared netlist gates *)
        let gate_value = Hashtbl.create 16 in
        let eval (s : Techmap.Synth.t) =
          let values =
            Techmap.Aig.eval s.Techmap.Synth.aig (fun node ->
                match Hashtbl.find_opt s.Techmap.Synth.gate_of_ci node with
                | Some gid -> Option.value (Hashtbl.find_opt gate_value gid) ~default:false
                | None -> false)
          in
          List.map
            (fun (_, tag, lit) ->
              let v = Techmap.Aig.node_of_lit lit in
              ( tag,
                if v = 0 then Techmap.Aig.is_complement lit
                else values.(v) <> Techmap.Aig.is_complement lit ))
            (Techmap.Aig.cos s.Techmap.Synth.aig)
        in
        let ok = ref true in
        for v = 0 to (1 lsl n_in) - 1 do
          Hashtbl.reset gate_value;
          List.iteri
            (fun i gid -> Hashtbl.replace gate_value gid ((v lsr i) land 1 = 1))
            (Net.inputs net);
          if eval synth <> eval balanced then ok := false
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* BLIF *)

let test_blif_structure () =
  let _, net, _, lg = mapped_fig2 () in
  let blif = Techmap.Blif.of_lutgraph net lg in
  let contains needle =
    let n = String.length needle and h = String.length blif in
    let rec go i = i + n <= h && (String.sub blif i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has model" true (contains ".model");
  check Alcotest.bool "has inputs" true (contains ".inputs");
  check Alcotest.bool "has outputs" true (contains ".outputs");
  check Alcotest.bool "has names" true (contains ".names");
  check Alcotest.bool "has end" true (contains ".end");
  (* one .names block per LUT at least *)
  let count_names =
    let rec go i acc =
      if i + 6 > String.length blif then acc
      else if String.sub blif i 6 = ".names" then go (i + 6) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.bool "names blocks cover luts" true (count_names >= L.n_luts lg)

(* ------------------------------------------------------------------ *)
(* VCD *)

let test_vcd_written () =
  let g, _ = Fixtures.loop () in
  let file = Filename.temp_file "repro" ".vcd" in
  let oc = open_out file in
  let r = Sim.Elastic.run ~vcd:oc g in
  close_out oc;
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  let content = In_channel.with_open_text file In_channel.input_all in
  Sys.remove file;
  let contains needle =
    let n = String.length needle and h = String.length content in
    let rec go i = i + n <= h && (String.sub content i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has header" true (contains "$enddefinitions");
  check Alcotest.bool "has timesteps" true (contains "#0");
  check Alcotest.bool "has vectors" true (contains "b")

(* ------------------------------------------------------------------ *)
(* slack matching *)

let test_slack_pads_short_path () =
  (* fork -> (mul latency 4 | direct) -> join-like operator: the direct
     side needs capacity *)
  let g = G.create "slack" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let tf = G.add_unit g ~width:0 (K.Fork 2) in
  let a = G.add_unit g ~width:8 (K.Const 3) in
  let b = G.add_unit g ~width:8 (K.Const 5) in
  let f = G.add_unit g ~width:8 (K.Fork 2) in
  let mul = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Mul) in
  let add = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Add) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:tf ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:0 ~dst:a ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:1 ~dst:b ~dst_port:0);
  ignore (G.connect g ~src:a ~src_port:0 ~dst:f ~dst_port:0);
  ignore (G.connect g ~src:f ~src_port:0 ~dst:mul ~dst_port:0);
  ignore (G.connect g ~src:b ~src_port:0 ~dst:mul ~dst_port:1);
  ignore (G.connect g ~src:mul ~src_port:0 ~dst:add ~dst_port:0);
  let short = G.connect g ~src:f ~src_port:1 ~dst:add ~dst_port:1 in
  ignore (G.connect g ~src:add ~src_port:0 ~dst:exit_ ~dst_port:0);
  let pads = Buffering.Slack.compute g in
  (match List.assoc_opt short pads with
  | Some slots -> check Alcotest.int "short side padded by mul latency" 4 slots
  | None -> Alcotest.fail "expected padding on the short path");
  (* applying them must not change the function *)
  let n = Buffering.Slack.apply g in
  check Alcotest.bool "padded" true (n >= 1);
  let r = Sim.Elastic.run g in
  (* 3*5 + 3 *)
  check (Alcotest.option Alcotest.int) "value" (Some 18) r.Sim.Elastic.exit_value

let test_slack_respects_existing_buffers () =
  let g, back = Fixtures.loop () in
  let pads = Buffering.Slack.compute g in
  check Alcotest.bool "back edge untouched" true (not (List.mem_assoc back pads))

let test_slack_preserves_kernels () =
  let k = Hls.Kernels.by_name "gsumif" in
  let expected = Hls.Kernels.reference k in
  let g = Hls.Kernels.graph k in
  let _ = Core.Flow.seed_back_edges g in
  let before = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
  let _ = Buffering.Slack.apply g in
  let after = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
  check (Alcotest.option Alcotest.int) "same value" (Some expected) after.Sim.Elastic.exit_value;
  check Alcotest.bool "not slower" true (after.Sim.Elastic.cycles <= before.Sim.Elastic.cycles)

(* ------------------------------------------------------------------ *)
(* routing-aware mode *)

let test_routing_aware_flow () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let config = { Core.Flow.default_config with Core.Flow.routing_aware = true } in
  let outcome = Core.Flow.iterative ~config g in
  check Alcotest.bool "completes" true (outcome.Core.Flow.iterations <> []);
  let r = Sim.Elastic.run outcome.Core.Flow.graph in
  check (Alcotest.option Alcotest.int) "still correct" (Some 10) r.Sim.Elastic.exit_value

let test_lut_extra_increases_delays () =
  let g, net, _, lg = mapped_fig2 () in
  let base = Timing.Mapping_aware.build g ~net lg in
  let inflated = Timing.Mapping_aware.build ~lut_extra:(fun _ -> 0.5) g ~net lg in
  let total m = List.fold_left (fun acc p -> acc +. p.Timing.Model.p_delay) 0. m.Timing.Model.pairs in
  check Alcotest.bool "surcharge visible" true (total inflated > total base +. 0.4)

(* ------------------------------------------------------------------ *)
(* Verilog export *)

let test_verilog_structure () =
  let _, net, _, _ = mapped_fig2 () in
  let v = Verilog.of_netlist net in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "module" true (contains "module fig2");
  check Alcotest.bool "clk" true (contains "input wire clk");
  check Alcotest.bool "assigns" true (contains "assign");
  check Alcotest.bool "registers" true (contains "always @(posedge clk)");
  check Alcotest.bool "endmodule" true (contains "endmodule")

(* ------------------------------------------------------------------ *)
(* AST pretty-printer round-trips through the parser *)

let test_ast_pp_roundtrip () =
  List.iter
    (fun k ->
      let f = Hls.Kernels.func k in
      let printed = Format.asprintf "%a" Hls.Ast.pp_func f in
      let reparsed = Hls.Parser.parse printed in
      check Alcotest.bool (k.Hls.Kernels.name ^ " round-trips") true (reparsed = f))
    Hls.Kernels.all

(* ------------------------------------------------------------------ *)
(* channel stats and critical path *)

let test_channel_stats () =
  let k = Hls.Kernels.by_name "gsum" in
  let g = Hls.Kernels.graph k in
  let _ = Core.Flow.seed_back_edges g in
  let r = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
  let total =
    Array.fold_left (fun acc st -> acc + st.Sim.Elastic.cs_transfers) 0 r.Sim.Elastic.channel_stats
  in
  check Alcotest.bool "transfers recorded" true (total > 0);
  (* conservation: the exit channel carries exactly one token *)
  let exit_chan =
    G.fold_channels g
      (fun acc c ->
        match (G.unit_node g c.G.dst).G.kind with K.Exit -> Some c.G.cid | _ -> acc)
      None
    |> Option.get
  in
  check Alcotest.int "one exit token" 1
    r.Sim.Elastic.channel_stats.(exit_chan).Sim.Elastic.cs_transfers

let test_critical_path_reported () =
  let g, net, _, lg = mapped_fig2 () in
  let r = Placeroute.Sta.analyze ~seed:7 net lg in
  check Alcotest.bool "path nonempty" true (r.Placeroute.Sta.critical_path <> []);
  check Alcotest.bool "path length bounded by levels" true
    (List.length r.Placeroute.Sta.critical_path <= r.Placeroute.Sta.logic_levels + 1);
  (* arrival argument: path length * lut delay <= cp *)
  check Alcotest.bool "cp consistent" true
    (float_of_int (List.length r.Placeroute.Sta.critical_path) *. Placeroute.Arch.lut_delay
     <= r.Placeroute.Sta.cp +. 1e-9);
  let rendered = Format.asprintf "%a" (fun fmt () -> Placeroute.Sta.pp_critical_path fmt g lg r) () in
  check Alcotest.bool "rendering mentions a lut" true (String.length rendered > 20)

let suite =
  [
    ("truth table: and", `Quick, test_truth_simple_and);
    ("truth table: xor", `Quick, test_truth_xor_table);
    ("mapping equivalence on fig2", `Quick, test_equivalence_fig2);
    qtest prop_equivalence_random;
    ("balance reduces chain depth", `Quick, test_balance_reduces_chain_depth);
    qtest prop_balance_preserves_function;
    ("blif export structure", `Quick, test_blif_structure);
    ("vcd written", `Quick, test_vcd_written);
    ("slack pads short path", `Quick, test_slack_pads_short_path);
    ("slack respects buffers", `Quick, test_slack_respects_existing_buffers);
    ("slack preserves kernels", `Quick, test_slack_preserves_kernels);
    ("routing-aware flow", `Quick, test_routing_aware_flow);
    ("lut_extra increases delays", `Quick, test_lut_extra_increases_delays);
    ("verilog export structure", `Quick, test_verilog_structure);
    ("ast pp round-trips", `Quick, test_ast_pp_roundtrip);
    ("channel stats", `Quick, test_channel_stats);
    ("critical path reported", `Quick, test_critical_path_reported);
  ]
