(* Three-way differential: gate-level netlist simulation vs unit-level
   elastic simulation vs (where applicable) the AST interpreter.  The
   netlist implements the same elastic protocol bit by bit, so both
   simulators must produce the same exit value — and within a small
   bound, the same schedule. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind

let check = Alcotest.check

(* drive a memory-less circuit's netlist until its exit fires; returns
   (cycles, exit value) *)
let run_netlist ?(max_cycles = 2_000) g =
  let net = Elaborate.run g in
  let sim = Net.sim_create net in
  let find_named prefix =
    List.filter_map
      (fun id ->
        match (Net.gate net id).Net.kind with
        | Net.Input nm when String.length nm >= String.length prefix
                            && String.sub nm 0 (String.length prefix) = prefix -> Some nm
        | _ -> None)
      (Net.inputs net)
  in
  let find_outputs prefix =
    List.filter_map
      (fun id ->
        match (Net.gate net id).Net.kind with
        | Net.Output nm when String.length nm >= String.length prefix
                             && String.sub nm 0 (String.length prefix) = prefix -> Some nm
        | _ -> None)
      (Net.outputs net)
  in
  List.iter (fun nm -> Net.sim_set_input sim nm true) (find_named "exit_ready");
  (* one-invocation protocol: hold each entry's valid until the token is
     accepted (valid && ready at a clock edge), then deassert *)
  let entries =
    List.map
      (fun vnm ->
        let suffix = String.sub vnm 11 (String.length vnm - 11) in
        (vnm, "entry_ready" ^ suffix, ref false))
      (find_named "entry_valid")
  in
  let drive_entries () =
    List.iter (fun (vnm, _, fired) -> Net.sim_set_input sim vnm (not !fired)) entries
  in
  let latch_entries () =
    List.iter
      (fun (_, rnm, fired) -> if (not !fired) && Net.sim_get_output sim rnm then fired := true)
      entries
  in
  let exit_valid = List.hd (find_outputs "exit_valid") in
  let data_outs =
    find_outputs "exit_data"
    |> List.sort (fun a b ->
           let bit nm = int_of_string (List.hd (List.rev (String.split_on_char '_' nm))) in
           compare (bit a) (bit b))
  in
  let cycle = ref 0 in
  let value = ref None in
  while !value = None && !cycle < max_cycles do
    drive_entries ();
    Net.sim_eval sim;
    if Net.sim_get_output sim exit_valid then begin
      let v = ref 0 in
      List.iteri (fun i nm -> if Net.sim_get_output sim nm then v := !v lor (1 lsl i)) data_outs;
      value := Some !v
    end
    else begin
      latch_entries ();
      Net.sim_step sim;
      incr cycle
    end
  done;
  (!cycle, !value)

(* gate-level run WITH a behavioural memory testbench: the memory port
   outputs (raddr/ren/waddr/wdata/wen) are serviced against an array and
   rdata inputs are driven back, mimicking a registered BRAM *)
let run_netlist_with_memory ?(max_cycles = 5_000) g mems =
  let net = Elaborate.run g in
  let sim = Net.sim_create net in
  let inputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Input nm -> Some nm | _ -> None)
      (Net.inputs net)
  in
  let outputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Output nm -> Some nm | _ -> None)
      (Net.outputs net)
  in
  let with_prefix p l = List.filter (fun nm -> String.length nm >= String.length p && String.sub nm 0 (String.length p) = p) l in
  let entries =
    List.map
      (fun vnm ->
        let suffix = String.sub vnm 11 (String.length vnm - 11) in
        (vnm, "entry_ready" ^ suffix, ref false))
      (with_prefix "entry_valid" inputs)
  in
  List.iter (fun nm -> Net.sim_set_input sim nm true) (with_prefix "exit_ready" inputs);
  let exit_valid = List.hd (with_prefix "exit_valid" outputs) in
  let data_outs =
    with_prefix "exit_data" outputs
    |> List.sort (fun a b ->
           let bit nm = int_of_string (List.hd (List.rev (String.split_on_char '_' nm))) in
           compare (bit a) (bit b))
  in
  (* memory port wiring: group by "mem_<name>_<kind>_u<uid>_<bit>" *)
  let split nm = String.split_on_char '_' nm in
  let read_bus kind mem uid =
    (* collect data/addr bits of one port, LSB first *)
    List.filter
      (fun nm ->
        match split nm with
        | "mem" :: m :: k :: u :: _ -> m = mem && k = kind && u = uid
        | _ -> false)
      outputs
    |> List.sort (fun a b ->
           let bit nm = int_of_string (List.hd (List.rev (split nm))) in
           compare (bit a) (bit b))
  in
  let bus_value bus =
    List.fold_left
      (fun (acc, i) nm -> ((acc lor (if Net.sim_get_output sim nm then 1 lsl i else 0)), i + 1))
      (0, 0) bus
    |> fst
  in
  (* discover load ports (ren) and store ports (wen) *)
  let load_ports =
    List.filter_map
      (fun nm ->
        match split nm with
        | [ "mem"; m; "ren"; u ] -> Some (m, u, nm, read_bus "raddr" m u)
        | _ -> None)
      outputs
  in
  let store_ports =
    List.filter_map
      (fun nm ->
        match split nm with
        | [ "mem"; m; "wen"; u ] -> Some (m, u, nm, read_bus "waddr" m u, read_bus "wdata" m u)
        | _ -> None)
      outputs
  in
  let rdata_inputs mem uid =
    with_prefix (Printf.sprintf "mem_%s_rdata_%s_" mem uid) inputs
    |> List.sort (fun a b ->
           let bit nm = int_of_string (List.hd (List.rev (split nm))) in
           compare (bit a) (bit b))
  in
  let mem_of name = List.assoc name mems in
  let cycle = ref 0 in
  let value = ref None in
  while !value = None && !cycle < max_cycles do
    List.iter (fun (vnm, _, fired) -> Net.sim_set_input sim vnm (not !fired)) entries;
    Net.sim_eval sim;
    (* combinational (LUT-RAM) reads: present the addressed word and
       settle again so the load pipeline latches it this cycle *)
    List.iter
      (fun (m, u, ren, raddr) ->
        ignore ren;
        let arr = mem_of m in
        let a = bus_value raddr mod Array.length arr in
        List.iteri
          (fun i nm -> Net.sim_set_input sim nm ((arr.(a) lsr i) land 1 = 1))
          (rdata_inputs m u))
      load_ports;
    Net.sim_eval sim;
    if Net.sim_get_output sim exit_valid then begin
      let v = ref 0 in
      List.iteri (fun i nm -> if Net.sim_get_output sim nm then v := !v lor (1 lsl i)) data_outs;
      value := Some !v
    end
    else begin
      List.iter
        (fun (_, rnm, fired) -> if (not !fired) && Net.sim_get_output sim rnm then fired := true)
        entries;
      List.iter
        (fun (m, _, wen, waddr, wdata) ->
          if Net.sim_get_output sim wen then begin
            let arr = mem_of m in
            let a = bus_value waddr mod Array.length arr in
            arr.(a) <- bus_value wdata
          end)
        store_ports;
      Net.sim_step sim;
      incr cycle
    end
  done;
  (!cycle, !value)

(* three-way differential on a real memory kernel: gate-level netlist ==
   unit-level simulator == AST interpreter *)
let test_memory_kernel_three_way () =
  let src =
    "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; } return \
     s; }"
  in
  let f = Hls.Parser.parse src in
  let data = Array.init 8 (fun i -> (3 * i) + 1) in
  let expected = Hls.Interp.run f ~args:[] ~memories:[ ("a", Array.copy data) ] in
  let g = Hls.Compile.compile f in
  let _ = Core.Flow.seed_back_edges g in
  let unit_r = Sim.Elastic.run ~memories:[ ("a", Array.copy data) ] g in
  let _, gate_value = run_netlist_with_memory g [ ("a", Array.copy data) ] in
  check (Alcotest.option Alcotest.int) "unit == interp" (Some expected) unit_r.Sim.Elastic.exit_value;
  check (Alcotest.option Alcotest.int) "gate == interp" (Some expected) gate_value

let test_loop_gate_vs_unit () =
  let g, _ = Fixtures.loop () in
  let unit_r = Sim.Elastic.run g in
  let gate_cycles, gate_value = run_netlist g in
  check (Alcotest.option Alcotest.int) "same exit value" unit_r.Sim.Elastic.exit_value gate_value;
  (* schedules agree within a cycle (exit sampling convention differs) *)
  check Alcotest.bool "similar cycle count" true
    (abs (gate_cycles + 1 - unit_r.Sim.Elastic.cycles) <= 2)

let test_straightline_gate_vs_unit () =
  let g = G.create "straight" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let tf = G.add_unit g ~width:0 (K.Fork 2) in
  let a = G.add_unit g ~width:8 (K.Const 13) in
  let b = G.add_unit g ~width:8 (K.Const 29) in
  let add = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Add) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:tf ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:0 ~dst:a ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:1 ~dst:b ~dst_port:0);
  ignore (G.connect g ~src:a ~src_port:0 ~dst:add ~dst_port:0);
  ignore (G.connect g ~src:b ~src_port:0 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:exit_ ~dst_port:0);
  let _, gate_value = run_netlist g in
  check (Alcotest.option Alcotest.int) "13+29" (Some 42) gate_value

let test_pipelined_mul_gate_level () =
  let g = G.create "gmul" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let tf = G.add_unit g ~width:0 (K.Fork 2) in
  let a = G.add_unit g ~width:8 (K.Const 6) in
  let b = G.add_unit g ~width:8 (K.Const 7) in
  let m = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Mul) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:tf ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:0 ~dst:a ~dst_port:0);
  ignore (G.connect g ~src:tf ~src_port:1 ~dst:b ~dst_port:0);
  ignore (G.connect g ~src:a ~src_port:0 ~dst:m ~dst_port:0);
  ignore (G.connect g ~src:b ~src_port:0 ~dst:m ~dst_port:1);
  ignore (G.connect g ~src:m ~src_port:0 ~dst:exit_ ~dst_port:0);
  let gate_cycles, gate_value = run_netlist g in
  check (Alcotest.option Alcotest.int) "6*7 through the staged array multiplier" (Some 42)
    gate_value;
  check Alcotest.bool "took the pipeline latency" true (gate_cycles >= 4)

let test_branchy_gate_vs_unit () =
  (* branch + cmerge/mux reconvergence at gate level *)
  let g, _, _, _, _ = Fixtures.fig2 () in
  (* fig2 ends in sinks; instead check it at unit level and only assert
     the netlist stabilises and accepts the token *)
  let net = Elaborate.run g in
  let sim = Net.sim_create net in
  List.iter
    (fun id ->
      match (Net.gate net id).Net.kind with
      | Net.Input nm -> Net.sim_set_input sim nm true
      | _ -> ())
    (Net.inputs net);
  Net.sim_eval sim;
  Net.sim_step sim;
  Net.sim_eval sim;
  check Alcotest.bool "stable" true true

let suite =
  [
    ("gate vs unit: loop kernel", `Quick, test_loop_gate_vs_unit);
    ("gate level: straight line", `Quick, test_straightline_gate_vs_unit);
    ("gate level: staged multiplier", `Quick, test_pipelined_mul_gate_level);
    ("gate level: branchy circuit stabilises", `Quick, test_branchy_gate_vs_unit);
    ("three-way: memory kernel", `Quick, test_memory_kernel_three_way);
  ]
