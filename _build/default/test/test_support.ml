let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Support.Rng.create 42 and b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Support.Rng.create 1 and b = Support.Rng.create 2 in
  let xs = List.init 10 (fun _ -> Support.Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Support.Rng.int b 1_000_000) in
  check Alcotest.bool "different streams" true (xs <> ys)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 1 1_000))
    (fun (seed, bound) ->
      let rng = Support.Rng.create seed in
      let v = Support.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float stays in bounds" ~count:200
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let v = Support.Rng.float rng 3.5 in
      v >= 0. && v < 3.5)

let test_rng_shuffle_permutation () =
  let rng = Support.Rng.create 7 in
  let a = Array.init 50 (fun i -> i) in
  Support.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let rng = Support.Rng.create 9 in
  let child = Support.Rng.split rng in
  let a = Support.Rng.int rng 1000 and b = Support.Rng.int child 1000 in
  (* not a strong property, but the streams should diverge *)
  let a2 = Support.Rng.int rng 1000 and b2 = Support.Rng.int child 1000 in
  check Alcotest.bool "streams diverge" true ((a, a2) <> (b, b2))

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_push_get () =
  let v = Support.Vec.create () in
  for i = 0 to 99 do
    check Alcotest.int "index returned" i (Support.Vec.push v (i * 2))
  done;
  check Alcotest.int "length" 100 (Support.Vec.length v);
  check Alcotest.int "get" 84 (Support.Vec.get v 42);
  Support.Vec.set v 42 7;
  check Alcotest.int "set" 7 (Support.Vec.get v 42)

let test_vec_bounds () =
  let v = Support.Vec.create () in
  ignore (Support.Vec.push v 1);
  (match Support.Vec.get v 1 with
  | _ -> Alcotest.fail "expected out of bounds"
  | exception Invalid_argument _ -> ());
  match Support.Vec.get v (-1) with
  | _ -> Alcotest.fail "expected out of bounds"
  | exception Invalid_argument _ -> ()

let test_vec_iterators () =
  let v = Support.Vec.create () in
  List.iter (fun x -> ignore (Support.Vec.push v x)) [ 1; 2; 3; 4 ];
  check Alcotest.int "fold" 10 (Support.Vec.fold ( + ) 0 v);
  check Alcotest.(list int) "to_list" [ 1; 2; 3; 4 ] (Support.Vec.to_list v);
  check Alcotest.(list int) "map_to_list" [ 2; 4; 6; 8 ] (Support.Vec.map_to_list (fun x -> 2 * x) v);
  check Alcotest.bool "exists" true (Support.Vec.exists (fun x -> x = 3) v);
  check (Alcotest.option Alcotest.int) "find_index" (Some 2)
    (Support.Vec.find_index (fun x -> x = 3) v)

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_uf_basic () =
  let uf = Support.Union_find.create 6 in
  Support.Union_find.union uf 0 1;
  Support.Union_find.union uf 2 3;
  Support.Union_find.union uf 1 2;
  check Alcotest.bool "0~3" true (Support.Union_find.same uf 0 3);
  check Alcotest.bool "0!~4" false (Support.Union_find.same uf 0 4);
  let classes = Support.Union_find.classes uf in
  let sizes = Array.to_list classes |> List.map List.length |> List.filter (( <> ) 0) in
  check (Alcotest.list Alcotest.int) "class sizes" [ 4; 1; 1 ] (List.sort (fun a b -> compare b a) sizes)

let prop_uf_transitive =
  QCheck.Test.make ~name:"union-find transitivity" ~count:100
    QCheck.(pair (int_range 2 30) (list_of_size (Gen.int_range 0 40) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let uf = Support.Union_find.create n in
      List.iter (fun (a, b) -> Support.Union_find.union uf (a mod n) (b mod n)) pairs;
      (* representatives are consistent *)
      List.for_all
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          Support.Union_find.same uf a b
          = (Support.Union_find.find uf a = Support.Union_find.find uf b))
        pairs)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    qtest prop_rng_bounds;
    qtest prop_rng_float_bounds;
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng split", `Quick, test_rng_split_independent);
    ("vec push/get/set", `Quick, test_vec_push_get);
    ("vec bounds checked", `Quick, test_vec_bounds);
    ("vec iterators", `Quick, test_vec_iterators);
    ("union-find basics", `Quick, test_uf_basic);
    qtest prop_uf_transitive;
  ]
