module G = Dataflow.Graph
module A = Dataflow.Analysis

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Lexer / parser *)

let test_lexer_basics () =
  let toks = Hls.Lexer.tokenize "int x = 42; // comment\n x = x << 2;" in
  check Alcotest.int "token count" 12 (List.length toks)

let test_lexer_comments () =
  let toks = Hls.Lexer.tokenize "/* block */ int /* mid */ x" in
  check Alcotest.int "int ident eof" 3 (List.length toks)

let test_lexer_error () =
  match Hls.Lexer.tokenize "int $" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Hls.Lexer.Error _ -> ()

let test_parse_simple () =
  let f = Hls.Parser.parse "int f(int a[4]) { return a[0] + 1; }" in
  check Alcotest.string "name" "f" f.Hls.Ast.fname;
  check Alcotest.int "params" 1 (List.length f.Hls.Ast.params)

let test_parse_for_if () =
  let f =
    Hls.Parser.parse
      "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) { if (a[i] > 2) { s = s \
       + a[i]; } } return s; }"
  in
  match f.Hls.Ast.body with
  | [ Hls.Ast.Decl _; Hls.Ast.For _; Hls.Ast.Return _ ] -> ()
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parse_error () =
  match Hls.Parser.parse "int f() { return }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Hls.Parser.Error _ -> ()

let test_parse_ternary () =
  let f = Hls.Parser.parse "int f() { return 1 < 2 ? 10 : 20; }" in
  (match f.Hls.Ast.body with
  | [ Hls.Ast.Return (Hls.Ast.Ternary (Hls.Ast.Binop (Hls.Ast.Lt, _, _), Hls.Ast.Int 10, Hls.Ast.Int 20)) ]
    -> ()
  | _ -> Alcotest.fail "ternary shape");
  check Alcotest.int "interp true arm" 10 (Hls.Interp.run f ~args:[] ~memories:[])

let test_parse_precedence () =
  let f = Hls.Parser.parse "int f() { return 1 + 2 * 3; }" in
  match f.Hls.Ast.body with
  | [ Hls.Ast.Return (Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Int 1, Hls.Ast.Binop (Hls.Ast.Mul, _, _))) ]
    -> ()
  | _ -> Alcotest.fail "precedence wrong"

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_interp_masking () =
  let f = Hls.Parser.parse "int f() { int x = 200; int y = x + 100; return y; }" in
  check Alcotest.int "mod 256" ((200 + 100) land 255) (Hls.Interp.run f ~args:[] ~memories:[])

let test_interp_loop () =
  let f = Hls.Parser.parse "int f() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }" in
  check Alcotest.int "sum" 45 (Hls.Interp.run f ~args:[] ~memories:[])

let test_interp_runaway () =
  let f = Hls.Parser.parse "int f() { while (1) { int x = 0; } return 0; }" in
  match Hls.Interp.run ~max_steps:1000 f ~args:[] ~memories:[] with
  | _ -> Alcotest.fail "expected runaway"
  | exception Hls.Interp.Runaway -> ()

(* ------------------------------------------------------------------ *)
(* Compilation structure *)

let seed_back_edges g =
  let back = match G.marked_back_edges g with [] -> A.back_edges g | m -> m in
  List.iter (fun c -> G.set_buffer g c (Some { G.transparent = false; slots = 2 })) back

let test_ternary_circuit () =
  (* the ternary compiles to a select unit and matches the interpreter *)
  let f =
    Hls.Parser.parse
      "int f(int a[16]) { int s = 0; for (int i = 0; i < 16; i = i + 1) { int d = a[i]; s = s + \
       (d > 100 ? 100 : d); } return s; }"
  in
  let mem = Array.init 16 (fun i -> (i * 29) land 255) in
  let expected = Hls.Interp.run f ~args:[] ~memories:[ ("a", Array.copy mem) ] in
  let g = Hls.Compile.compile f in
  let has_select =
    G.find_units g (fun n ->
        match n.G.kind with
        | Dataflow.Unit_kind.Operator { op = Dataflow.Ops.Select; _ } -> true
        | _ -> false)
    <> []
  in
  check Alcotest.bool "select unit present" true has_select;
  seed_back_edges g;
  let r = Sim.Elastic.run ~memories:[ ("a", Array.copy mem) ] g in
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

let test_compile_valid_graphs () =
  List.iter
    (fun k ->
      let g = Hls.Kernels.graph k in
      match G.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.fail (k.Hls.Kernels.name ^ ": " ^ e))
    Hls.Kernels.all

let test_compile_has_loops () =
  List.iter
    (fun k ->
      let g = Hls.Kernels.graph k in
      check Alcotest.bool (k.Hls.Kernels.name ^ " has cycles") true (A.cyclic_sccs g <> []))
    Hls.Kernels.all

(* Differential: simulate each kernel's circuit (back edges buffered)
   and compare the exit value with the interpreter. *)
let simulate_kernel ?(extra = []) k =
  let g = Hls.Kernels.graph k in
  seed_back_edges g;
  List.iter (fun c -> G.set_buffer g c (Some { G.transparent = false; slots = 2 })) extra;
  let mems = k.Hls.Kernels.mems () in
  Sim.Elastic.run ~memories:mems g

let diff_test k () =
  let expected = Hls.Kernels.reference k in
  let r = simulate_kernel k in
  if not r.Sim.Elastic.finished then
    Alcotest.fail
      (Printf.sprintf "%s did not finish (deadlocked=%b, cycles=%d)" k.Hls.Kernels.name
         r.Sim.Elastic.deadlocked r.Sim.Elastic.cycles);
  check Alcotest.int (k.Hls.Kernels.name ^ " value") expected
    (Option.get r.Sim.Elastic.exit_value)

let test_extra_buffers_preserve_function () =
  (* latency-insensitivity: buffering any channel must not change the
     result (only the schedule) *)
  let k = Hls.Kernels.by_name "gsum" in
  let expected = Hls.Kernels.reference k in
  let g = Hls.Kernels.graph k in
  let n = G.n_channels g in
  let extras = List.init (n / 7) (fun i -> i * 7) in
  let r = simulate_kernel ~extra:extras k in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check Alcotest.int "same value" expected (Option.get r.Sim.Elastic.exit_value)

let suite =
  [
    ("lexer basics", `Quick, test_lexer_basics);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer error", `Quick, test_lexer_error);
    ("parse simple", `Quick, test_parse_simple);
    ("parse for/if", `Quick, test_parse_for_if);
    ("parse error", `Quick, test_parse_error);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse ternary", `Quick, test_parse_ternary);
    ("ternary circuit == interpreter", `Quick, test_ternary_circuit);
    ("interp masking", `Quick, test_interp_masking);
    ("interp loop", `Quick, test_interp_loop);
    ("interp runaway", `Quick, test_interp_runaway);
    ("compile produces valid graphs", `Quick, test_compile_valid_graphs);
    ("compiled kernels contain loops", `Quick, test_compile_has_loops);
    ("extra buffers preserve function", `Quick, test_extra_buffers_preserve_function);
  ]
  @ List.map
      (fun k -> ("circuit == interpreter: " ^ k.Hls.Kernels.name, `Quick, diff_test k))
      Hls.Kernels.all
