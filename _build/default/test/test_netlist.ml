module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Net primitives *)

let test_net_basic () =
  let net = Net.create "t" in
  let a = Net.input net ~owner:0 ~dom:Net.Data "a" in
  let b = Net.input net ~owner:0 ~dom:Net.Data "b" in
  let y = Net.and2 net ~owner:0 a b in
  ignore (Net.output net ~owner:0 "y" y);
  check Alcotest.bool "valid" true (Result.is_ok (Net.validate net));
  let sim = Net.sim_create net in
  Net.sim_set_input sim "a" true;
  Net.sim_set_input sim "b" true;
  Net.sim_eval sim;
  check Alcotest.bool "and true" true (Net.sim_get_output sim "y");
  Net.sim_set_input sim "b" false;
  Net.sim_eval sim;
  check Alcotest.bool "and false" false (Net.sim_get_output sim "y")

let test_net_domain_join () =
  let net = Net.create "t" in
  let v = Net.input net ~owner:0 ~dom:Net.Valid "v" in
  let d = Net.input net ~owner:0 ~dom:Net.Data "d" in
  let m = Net.and2 net ~owner:0 v d in
  check Alcotest.bool "mixed" true ((Net.gate net m).Net.dom = Net.Mixed)

let test_net_ff () =
  let net = Net.create "t" in
  let d = Net.input net ~owner:0 ~dom:Net.Data "d" in
  let q = Net.ff net ~owner:0 ~dom:Net.Data () in
  Net.connect net q d;
  ignore (Net.output net ~owner:0 "q" q);
  let sim = Net.sim_create net in
  Net.sim_set_input sim "d" true;
  Net.sim_eval sim;
  check Alcotest.bool "before edge" false (Net.sim_get_output sim "q");
  Net.sim_step sim;
  Net.sim_eval sim;
  check Alcotest.bool "after edge" true (Net.sim_get_output sim "q")

let test_net_comb_cycle_detected () =
  let net = Net.create "t" in
  let w = Net.wire net ~owner:0 ~dom:Net.Data in
  let n = Net.not_ net ~owner:0 w in
  Net.connect net w n;
  ignore (Net.output net ~owner:0 "y" n);
  let sim = Net.sim_create net in
  Alcotest.check_raises "oscillates" (Failure "Net.sim_eval: combinational cycle") (fun () ->
      Net.sim_eval sim)

let test_net_unconnected_wire () =
  let net = Net.create "t" in
  let _ = Net.wire net ~owner:0 ~dom:Net.Data in
  check Alcotest.bool "invalid" true (Result.is_error (Net.validate net))

(* ------------------------------------------------------------------ *)
(* Datapath vs Ops.eval, differential *)

let width = 8
let mask = (1 lsl width) - 1

let eval_dp op a b =
  let net = Net.create "dp" in
  let bits name v =
    Array.init width (fun i ->
        let g = Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "%s%d" name i) in
        ignore v;
        g)
  in
  let av = bits "a" a and bv = bits "b" b in
  let out = Datapath.of_op net ~owner:0 op [ av; bv ] in
  Array.iteri (fun i g -> ignore (Net.output net ~owner:0 (Printf.sprintf "y%d" i) g)) out;
  let sim = Net.sim_create net in
  for i = 0 to width - 1 do
    Net.sim_set_input sim (Printf.sprintf "a%d" i) ((a lsr i) land 1 = 1);
    Net.sim_set_input sim (Printf.sprintf "b%d" i) ((b lsr i) land 1 = 1)
  done;
  Net.sim_eval sim;
  let r = ref 0 in
  for i = Array.length out - 1 downto 0 do
    r := (!r lsl 1) lor (if Net.sim_get_output sim (Printf.sprintf "y%d" i) then 1 else 0)
  done;
  !r

let ref_op op a b =
  match op with
  | Ops.Icmp _ -> Ops.eval op [ a; b ]
  | Ops.Shl | Ops.Lshr ->
    (* the gate-level barrel shifter interprets the full operand as the
       amount, zeroing on overflow *)
    if b >= width then 0 else Ops.eval op [ a; b ] land mask
  | _ -> Ops.eval op [ a; b ] land mask

let diff_prop op name =
  QCheck.Test.make ~name ~count:100
    QCheck.(pair (int_range 0 mask) (int_range 0 mask))
    (fun (a, b) -> eval_dp op a b = ref_op op a b)

let prop_add = diff_prop Ops.Add "gate-level add = reference"
let prop_sub = diff_prop Ops.Sub "gate-level sub = reference"
let prop_mul = diff_prop Ops.Mul "gate-level mul = reference"
let prop_and = diff_prop Ops.And_ "gate-level and = reference"
let prop_xor = diff_prop Ops.Xor_ "gate-level xor = reference"
let prop_shl = diff_prop Ops.Shl "gate-level shl = reference"
let prop_lshr = diff_prop Ops.Lshr "gate-level lshr = reference"
let prop_lt = diff_prop (Ops.Icmp Ops.Lt) "gate-level ult = reference"
let prop_le = diff_prop (Ops.Icmp Ops.Le) "gate-level ule = reference"
let prop_eq = diff_prop (Ops.Icmp Ops.Eq) "gate-level eq = reference"

(* ------------------------------------------------------------------ *)
(* Elaboration *)

let test_elaborate_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  check Alcotest.bool "netlist valid" true (Result.is_ok (Net.validate net));
  check Alcotest.bool "has gates" true (Net.n_gates net > 50)

let test_elaborate_loop_buffered () =
  let g, _ = Fixtures.loop () in
  let net = Elaborate.run g in
  check Alcotest.bool "valid" true (Result.is_ok (Net.validate net));
  (* the opaque buffer introduces flip-flops (2 valid + 2x8 data) *)
  check Alcotest.bool "has ffs" true (Net.count_ffs net >= 18)

let test_elaborate_loop_unbuffered_cycle () =
  (* without the back-edge buffer the handshake is a combinational
     cycle; synthesis must detect it *)
  let g, _ = Fixtures.loop ~buffered:false () in
  let net = Elaborate.run g in
  match Techmap.Synth.run net with
  | _ -> Alcotest.fail "expected combinational-cycle failure"
  | exception Failure _ -> ()

let test_elaborate_owners () =
  let g, fork, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let found = ref false in
  Net.iter net (fun gate -> if gate.Net.owner = fork then found := true);
  check Alcotest.bool "fork owns gates" true !found

let test_interaction_units () =
  let g, _, _, _, branch = Fixtures.fig2 () in
  let ia = Elaborate.interaction_units g in
  check Alcotest.bool "branch interacts" true (List.mem branch ia)

(* Elastic end-to-end at gate level: the fig2 circuit (all combinational,
   constant inputs) produces a valid exit token with correct sink intake. *)
let test_elaborate_fig2_fires () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let sim = Net.sim_create net in
  (* find the entry unit's valid input name *)
  let entry_valid =
    List.find_map
      (fun id ->
        match (Net.gate net id).Net.kind with
        | Net.Input n when String.length n >= 11 && String.sub n 0 11 = "entry_valid" -> Some n
        | _ -> None)
      (Net.inputs net)
    |> Option.get
  in
  Net.sim_set_input sim entry_valid true;
  Net.sim_eval sim;
  (* eager forks deliver combinationally; entry token accepted promptly *)
  let entry_ready =
    List.find_map
      (fun id ->
        match (Net.gate net id).Net.kind with
        | Net.Output n when String.length n >= 11 && String.sub n 0 11 = "entry_ready" -> Some n
        | _ -> None)
      (Net.outputs net)
    |> Option.get
  in
  check Alcotest.bool "entry accepted" true (Net.sim_get_output sim entry_ready)

(* gate-level skid buffer: capacity 2, one-cycle latency, FIFO order *)
let test_skid_buffer_protocol () =
  let g = G.create "skid" in
  let entry = G.add_unit g ~width:4 K.Source in
  let snk = G.add_unit g ~width:4 K.Sink in
  let cid = G.connect g ~src:entry ~src_port:0 ~dst:snk ~dst_port:0 in
  G.set_buffer g cid (Some { G.transparent = false; slots = 2 });
  let net = Elaborate.run g in
  check Alcotest.bool "valid" true (Result.is_ok (Net.validate net));
  (* source constantly valid, sink constantly ready: after warm-up the
     buffer passes one token per cycle; with 4-bit zero data the netlist
     stabilises every cycle *)
  let sim = Net.sim_create net in
  for _ = 1 to 5 do
    Net.sim_eval sim;
    Net.sim_step sim
  done;
  Net.sim_eval sim;
  check Alcotest.bool "stable steady state" true true

(* eager fork at gate level: one consumer stalls, the other is served;
   the producer is released only when both took the token *)
let test_eager_fork_partial_delivery () =
  let net = Net.create "fork" in
  (* hand-build: valid_in, ready_a (stalled), ready_b *)
  let g = G.create "forkg" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let f = G.add_unit g ~width:0 (K.Fork 2) in
  let ea = G.add_unit g ~width:0 K.Exit in
  let eb = G.add_unit g ~width:0 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:f ~dst_port:0);
  ignore (G.connect g ~src:f ~src_port:0 ~dst:ea ~dst_port:0);
  ignore (G.connect g ~src:f ~src_port:1 ~dst:eb ~dst_port:0);
  ignore net;
  let net = Elaborate.run g in
  let sim = Net.sim_create net in
  let input_named prefix v =
    List.iter
      (fun id ->
        match (Net.gate net id).Net.kind with
        | Net.Input nm
          when String.length nm >= String.length prefix
               && String.sub nm 0 (String.length prefix) = prefix ->
          Net.sim_set_input sim nm v
        | _ -> ())
      (Net.inputs net)
  in
  (* entry offers; exit A stalls, exit B ready *)
  input_named "entry_valid" true;
  input_named (Printf.sprintf "exit_ready_u%d" ea) false;
  input_named (Printf.sprintf "exit_ready_u%d" eb) true;
  Net.sim_eval sim;
  let out nm = Net.sim_get_output sim nm in
  check Alcotest.bool "B sees the token" true (out (Printf.sprintf "exit_valid_u%d" eb));
  check Alcotest.bool "producer not released" false (out (Printf.sprintf "entry_ready_u%d" entry));
  Net.sim_step sim;
  Net.sim_eval sim;
  (* B already served: its valid must have dropped (no duplication) *)
  check Alcotest.bool "no duplicate to B" false (out (Printf.sprintf "exit_valid_u%d" eb));
  check Alcotest.bool "A still offered" true (out (Printf.sprintf "exit_valid_u%d" ea));
  (* unstall A: token completes, producer released *)
  input_named (Printf.sprintf "exit_ready_u%d" ea) true;
  Net.sim_eval sim;
  check Alcotest.bool "producer released" true (out (Printf.sprintf "entry_ready_u%d" entry))

let test_verilog_compiles_shapes () =
  let g, _ = Fixtures.loop () in
  let net = Elaborate.run g in
  let v = Verilog.of_netlist net in
  (* every gate appears exactly once as a driver: count assigns + regs *)
  let count needle =
    let n = String.length needle and h = String.length v in
    let rec go i acc =
      if i + n > h then acc else if String.sub v i n = needle then go (i + 1) (acc + 1) else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.bool "one reg decl per ff" true (count "  reg n" = Net.count_ffs net)

let suite =
  [
    ("net basic and2", `Quick, test_net_basic);
    ("net domain join", `Quick, test_net_domain_join);
    ("net ff", `Quick, test_net_ff);
    ("net comb cycle detection", `Quick, test_net_comb_cycle_detected);
    ("net unconnected wire invalid", `Quick, test_net_unconnected_wire);
    qtest prop_add;
    qtest prop_sub;
    qtest prop_mul;
    qtest prop_and;
    qtest prop_xor;
    qtest prop_shl;
    qtest prop_lshr;
    qtest prop_lt;
    qtest prop_le;
    qtest prop_eq;
    ("elaborate fig2", `Quick, test_elaborate_fig2);
    ("elaborate buffered loop", `Quick, test_elaborate_loop_buffered);
    ("elaborate unbuffered loop has comb cycle", `Quick, test_elaborate_loop_unbuffered_cycle);
    ("elaborate gate owners", `Quick, test_elaborate_owners);
    ("interaction units", `Quick, test_interaction_units);
    ("fig2 fires at gate level", `Quick, test_elaborate_fig2_fires);
    ("skid buffer protocol", `Quick, test_skid_buffer_protocol);
    ("eager fork partial delivery", `Quick, test_eager_fork_partial_delivery);
    ("verilog shape", `Quick, test_verilog_compiles_shapes);
  ]
