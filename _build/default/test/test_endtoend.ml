(* End-to-end differential properties: random mini-C programs are
   compiled to elastic circuits and simulated; the result must match the
   AST interpreter.  This exercises the parser-to-simulator stack on
   program shapes the hand-written kernels do not cover. *)

module G = Dataflow.Graph
module A = Dataflow.Analysis

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* random structured program generation *)

let gen_program seed =
  let rng = Support.Rng.create seed in
  let vars = [ "x"; "y"; "z" ] in
  let var () = List.nth vars (Support.Rng.int rng 3) in
  let rec expr depth =
    if depth = 0 then
      match Support.Rng.int rng 3 with
      | 0 -> Hls.Ast.Int (Support.Rng.int rng 32)
      | 1 -> Hls.Ast.Var (var ())
      | _ -> Hls.Ast.Load ("m", Hls.Ast.Binop (Hls.Ast.And, Hls.Ast.Var (var ()), Hls.Ast.Int 15))
    else if Support.Rng.int rng 8 = 0 then
      Hls.Ast.Ternary
        ( Hls.Ast.Binop (Hls.Ast.Lt, expr 0, expr 0),
          expr (depth - 1),
          expr (depth - 1) )
    else
      let op =
        match Support.Rng.int rng 7 with
        | 0 -> Hls.Ast.Add
        | 1 -> Hls.Ast.Sub
        | 2 -> Hls.Ast.Mul
        | 3 -> Hls.Ast.And
        | 4 -> Hls.Ast.Or
        | 5 -> Hls.Ast.Xor
        | _ -> Hls.Ast.Lshr
      in
      Hls.Ast.Binop (op, expr (depth - 1), expr (depth - 1))
  in
  let cond () =
    let op =
      match Support.Rng.int rng 4 with
      | 0 -> Hls.Ast.Lt
      | 1 -> Hls.Ast.Le
      | 2 -> Hls.Ast.Eq
      | _ -> Hls.Ast.Gt
    in
    Hls.Ast.Binop (op, expr 1, expr 1)
  in
  let rec stmt ~in_loop depth =
    match if depth = 0 then Support.Rng.int rng 2 else Support.Rng.int rng 4 with
    | 0 -> Hls.Ast.Assign (var (), expr 2)
    | 1 ->
      Hls.Ast.Store
        ("m", Hls.Ast.Binop (Hls.Ast.And, expr 1, Hls.Ast.Int 15), expr 1)
    | 2 ->
      (* occasionally guard a break/continue inside loops *)
      if in_loop && Support.Rng.int rng 4 = 0 then
        Hls.Ast.If
          ( cond (),
            [ (if Support.Rng.bool rng then Hls.Ast.Break else Hls.Ast.Continue) ],
            [ stmt ~in_loop (depth - 1) ] )
      else Hls.Ast.If (cond (), [ stmt ~in_loop (depth - 1) ], [ stmt ~in_loop (depth - 1) ])
    | _ ->
      (* bounded counting loop over a fresh iterator *)
      let i = Printf.sprintf "i%d" (Support.Rng.int rng 1000) in
      let bound = 2 + Support.Rng.int rng 5 in
      Hls.Ast.For
        ( Hls.Ast.Decl (i, Hls.Ast.Int 0),
          Hls.Ast.Binop (Hls.Ast.Lt, Hls.Ast.Var i, Hls.Ast.Int bound),
          Hls.Ast.Assign (i, Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var i, Hls.Ast.Int 1)),
          [ stmt ~in_loop:true (depth - 1) ] )
  in
  let n_stmts = 2 + Support.Rng.int rng 3 in
  let body =
    [
      Hls.Ast.Decl ("x", Hls.Ast.Int (Support.Rng.int rng 16));
      Hls.Ast.Decl ("y", Hls.Ast.Int (Support.Rng.int rng 16));
      Hls.Ast.Decl ("z", Hls.Ast.Int (Support.Rng.int rng 16));
    ]
    @ List.init n_stmts (fun _ -> stmt ~in_loop:false 2)
    @ [
        Hls.Ast.Return
          (Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var "x",
             Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var "y", Hls.Ast.Var "z")));
      ]
  in
  { Hls.Ast.fname = "rand"; params = [ Hls.Ast.Array ("m", 16) ]; body }

let mem_data seed = Array.init 16 (fun i -> (seed + (i * 37)) land 255)

let prop_random_programs =
  QCheck.Test.make ~name:"random programs: circuit == interpreter" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let f = gen_program seed in
      let expected =
        Hls.Interp.run f ~args:[] ~memories:[ ("m", mem_data seed) ]
      in
      let g = Hls.Compile.compile f in
      (match G.validate g with Ok () -> () | Error e -> failwith e);
      let _ = Core.Flow.seed_back_edges g in
      let r =
        Sim.Elastic.run
          ~config:{ Sim.Elastic.max_cycles = 200_000; deadlock_window = 1_000 }
          ~memories:[ ("m", mem_data seed) ]
          g
      in
      r.Sim.Elastic.finished && r.Sim.Elastic.exit_value = Some expected)

(* Latency-insensitivity: buffering any subset of channels must preserve
   the computed value (only the schedule may change). *)
let prop_buffering_preserves_function =
  QCheck.Test.make ~name:"random buffering preserves function" ~count:20
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (pseed, bseed) ->
      let f = gen_program pseed in
      let expected = Hls.Interp.run f ~args:[] ~memories:[ ("m", mem_data pseed) ] in
      let g = Hls.Compile.compile f in
      let _ = Core.Flow.seed_back_edges g in
      let rng = Support.Rng.create bseed in
      G.iter_channels g (fun c ->
          if c.G.buffer = None && Support.Rng.int rng 4 = 0 then
            G.set_buffer g c.G.cid (Some { G.transparent = false; slots = 2 }));
      let r =
        Sim.Elastic.run
          ~config:{ Sim.Elastic.max_cycles = 400_000; deadlock_window = 2_000 }
          ~memories:[ ("m", mem_data pseed) ]
          g
      in
      r.Sim.Elastic.finished && r.Sim.Elastic.exit_value = Some expected)

(* Mapping-aware models of random programs are structurally sane. *)
let prop_timing_model_sane =
  QCheck.Test.make ~name:"timing model sane on random programs" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let f = gen_program seed in
      let g = Hls.Compile.compile f in
      let _ = Core.Flow.seed_back_edges g in
      let net = Elaborate.run g in
      let synth = Techmap.Synth.run net in
      let lg = Techmap.Mapper.run synth in
      let model = Timing.Mapping_aware.build g ~net lg in
      List.for_all (fun p -> p.Timing.Model.p_delay >= 0.) model.Timing.Model.pairs
      && Array.for_all (fun p -> p >= 0. && p <= 1. +. 1e-9) model.Timing.Model.penalty)

(* the pretty-printer and parser are mutual inverses on random programs *)
let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp then parse is identity" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let f = gen_program seed in
      let printed = Format.asprintf "%a" Hls.Ast.pp_func f in
      Hls.Parser.parse printed = f)

let suite =
  [
    qtest prop_random_programs;
    qtest prop_pp_parse_roundtrip;
    qtest prop_buffering_preserves_function;
    qtest prop_timing_model_sane;
  ]
