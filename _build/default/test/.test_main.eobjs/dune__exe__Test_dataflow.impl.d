test/test_dataflow.ml: Alcotest Array Dataflow Fixtures Hashtbl List QCheck QCheck_alcotest Result String Support
