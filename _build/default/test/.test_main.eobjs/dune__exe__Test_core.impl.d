test/test_core.ml: Alcotest Buffer Buffering Core Dataflow Fixtures Format List Sim String
