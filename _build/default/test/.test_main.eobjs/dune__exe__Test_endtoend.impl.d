test/test_endtoend.ml: Array Core Dataflow Elaborate Format Hls List Printf QCheck QCheck_alcotest Sim Support Techmap Timing
