test/test_timing.ml: Alcotest Array Core Dataflow Elaborate Fixtures Hls List Net Techmap Timing
