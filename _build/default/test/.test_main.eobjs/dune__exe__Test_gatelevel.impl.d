test/test_gatelevel.ml: Alcotest Array Core Dataflow Elaborate Fixtures Hls List Net Printf Sim String
