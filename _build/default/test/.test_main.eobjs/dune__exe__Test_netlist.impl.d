test/test_netlist.ml: Alcotest Array Dataflow Datapath Elaborate Fixtures List Net Option Printf QCheck QCheck_alcotest Result String Techmap Verilog
