test/test_hls.ml: Alcotest Array Dataflow Hls List Option Printf Sim
