test/test_milp.ml: Alcotest Array Milp Printf QCheck QCheck_alcotest Support
