test/test_support.ml: Alcotest Array Gen List QCheck QCheck_alcotest Support
