test/test_buffering.ml: Alcotest Array Buffering Dataflow Fixtures List Option Printf Timing
