test/test_regressions.ml: Alcotest Array Core Dataflow Hls Sim
