test/fixtures.ml: Dataflow
