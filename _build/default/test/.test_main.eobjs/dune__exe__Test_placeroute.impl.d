test/test_placeroute.ml: Alcotest Elaborate Fixtures Net Placeroute Techmap
