test/test_techmap.ml: Alcotest Array Dataflow Elaborate Fixtures Hashtbl List Net Printf QCheck QCheck_alcotest String Support Techmap
