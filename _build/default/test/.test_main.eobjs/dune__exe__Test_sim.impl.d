test/test_sim.ml: Alcotest Array Dataflow Fixtures Option Sim
