module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops
module E = Sim.Elastic

let check = Alcotest.check

(* entry -> const -> exit : straight-line token *)
let test_straightline () =
  let g = G.create "straight" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let c = G.add_unit g ~width:8 (K.Const 42) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:c ~dst_port:0);
  ignore (G.connect g ~src:c ~src_port:0 ~dst:exit_ ~dst_port:0);
  let r = E.run g in
  check Alcotest.bool "finished" true r.E.finished;
  check (Alcotest.option Alcotest.int) "value" (Some 42) r.E.exit_value;
  check Alcotest.int "one cycle" 1 r.E.cycles

let test_loop_counts_to_ten () =
  let g, _ = Fixtures.loop () in
  let r = E.run g in
  check Alcotest.bool "finished" true r.E.finished;
  check (Alcotest.option Alcotest.int) "exit value" (Some 10) r.E.exit_value;
  (* one iteration per cycle through the 2-slot buffer: ~11 cycles *)
  check Alcotest.bool "cycle count plausible" true (r.E.cycles >= 10 && r.E.cycles <= 25)

let test_loop_unbuffered_fails () =
  let g, _ = Fixtures.loop ~buffered:false () in
  match E.run g with
  | _ -> Alcotest.fail "expected combinational-cycle failure"
  | exception Failure _ -> ()

let test_extra_buffer_slows_loop () =
  (* adding a redundant opaque buffer on the loop increases the cycle
     count: the paper's motivation for avoiding over-buffering *)
  let g1, _ = Fixtures.loop () in
  let r1 = E.run g1 in
  let g2, _ = Fixtures.loop () in
  (* buffer the merge -> add channel as well *)
  let extra =
    G.fold_channels g2
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None ->
          let src_kind = (G.unit_node g2 c.G.src).G.kind in
          let dst_kind = (G.unit_node g2 c.G.dst).G.kind in
          (match (src_kind, dst_kind) with
          | K.Merge _, K.Operator _ -> Some c.G.cid
          | _ -> None))
      None
    |> Option.get
  in
  G.set_buffer g2 extra (Some { G.transparent = false; slots = 2 });
  let r2 = E.run g2 in
  check Alcotest.bool "both finish" true (r1.E.finished && r2.E.finished);
  check Alcotest.bool "extra buffer costs cycles" true (r2.E.cycles > r1.E.cycles)

let test_pipelined_mul () =
  (* entry-triggered consts into a multiplier; mul latency 4 *)
  let g = G.create "mul" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let t = G.add_unit g ~width:0 (K.Fork 2) in
  let a = G.add_unit g ~width:8 (K.Const 6) in
  let b = G.add_unit g ~width:8 (K.Const 7) in
  let m = G.add_unit g ~width:8 (K.operator Ops.Mul) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:t ~dst_port:0);
  ignore (G.connect g ~src:t ~src_port:0 ~dst:a ~dst_port:0);
  ignore (G.connect g ~src:t ~src_port:1 ~dst:b ~dst_port:0);
  ignore (G.connect g ~src:a ~src_port:0 ~dst:m ~dst_port:0);
  ignore (G.connect g ~src:b ~src_port:0 ~dst:m ~dst_port:1);
  ignore (G.connect g ~src:m ~src_port:0 ~dst:exit_ ~dst_port:0);
  let r = E.run g in
  check Alcotest.bool "finished" true r.E.finished;
  check (Alcotest.option Alcotest.int) "6*7" (Some 42) r.E.exit_value;
  check Alcotest.bool "latency >= 4" true (r.E.cycles >= 4)

let test_memory_store_load () =
  (* store 99 at addr 3, then load it back; sequencing via store token *)
  let g = G.create "mem" in
  G.add_memory g "m" 16;
  let entry = G.add_unit g ~width:0 K.Entry in
  let t = G.add_unit g ~width:0 (K.Fork 2) in
  let addr = G.add_unit g ~width:8 (K.Const 3) in
  let data = G.add_unit g ~width:8 (K.Const 99) in
  let st = G.add_unit g ~width:0 (K.Store { mem = "m" }) in
  let addr2 = G.add_unit g ~width:8 (K.Const 3) in
  let ld = G.add_unit g ~width:8 (K.Load { mem = "m"; latency = 2 }) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:t ~dst_port:0);
  ignore (G.connect g ~src:t ~src_port:0 ~dst:addr ~dst_port:0);
  ignore (G.connect g ~src:t ~src_port:1 ~dst:data ~dst_port:0);
  ignore (G.connect g ~src:addr ~src_port:0 ~dst:st ~dst_port:0);
  ignore (G.connect g ~src:data ~src_port:0 ~dst:st ~dst_port:1);
  (* store completion token triggers the load address constant *)
  ignore (G.connect g ~src:st ~src_port:0 ~dst:addr2 ~dst_port:0);
  ignore (G.connect g ~src:addr2 ~src_port:0 ~dst:ld ~dst_port:0);
  ignore (G.connect g ~src:ld ~src_port:0 ~dst:exit_ ~dst_port:0);
  let mem = Array.make 16 0 in
  let r = E.run ~memories:[ ("m", mem) ] g in
  check Alcotest.bool "finished" true r.E.finished;
  check (Alcotest.option Alcotest.int) "loaded" (Some 99) r.E.exit_value;
  check Alcotest.int "memory mutated" 99 mem.(3)

let test_deadlock_detected () =
  (* join whose second input never receives a token: deadlock *)
  let g = G.create "deadlock" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let j = G.add_unit g ~width:0 (K.Join 2) in
  let never = G.add_unit g ~width:0 K.Entry in
  let exit_ = G.add_unit g ~width:0 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:j ~dst_port:0);
  ignore (G.connect g ~src:never ~src_port:0 ~dst:j ~dst_port:1);
  ignore (G.connect g ~src:j ~src_port:0 ~dst:exit_ ~dst_port:0);
  (* 'never' emits one token too (it is an Entry), so this actually
     completes; make it not fire by pre-consuming: use a sink setup
     instead — simply mark the second entry as already emitted via a
     zero-token trick: connect through a branch conditioned false.
     Simplest deadlock: join fed twice from the same fork output is
     impossible by construction, so emulate with a const that never
     triggers: a source-less const is invalid... use max_cycles. *)
  let r = E.run ~config:{ E.max_cycles = 50; deadlock_window = 10 } g in
  (* both entries emit, so it finishes; this asserts the detector does
     not fire spuriously on a completing circuit *)
  check Alcotest.bool "no spurious deadlock" true (r.E.finished && not r.E.deadlocked)

let test_true_deadlock () =
  (* branch sends the token to the false side; the true-side join input
     never arrives -> deadlock *)
  let g = G.create "deadlock2" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let ef = G.add_unit g ~width:0 (K.Fork 2) in
  let zero = G.add_unit g ~width:1 (K.Const 0) in
  let v = G.add_unit g ~width:8 (K.Const 5) in
  let br = G.add_unit g ~width:8 K.Branch in
  let j = G.add_unit g ~width:8 (K.Join 2) in
  let snk = G.add_unit g ~width:8 K.Sink in
  let src2 = G.add_unit g ~width:8 K.Source in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:ef ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:0 ~dst:zero ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:1 ~dst:v ~dst_port:0);
  ignore (G.connect g ~src:v ~src_port:0 ~dst:br ~dst_port:0);
  ignore (G.connect g ~src:zero ~src_port:0 ~dst:br ~dst_port:1);
  (* true side feeds the join; false side is discarded *)
  ignore (G.connect g ~src:br ~src_port:0 ~dst:j ~dst_port:0);
  ignore (G.connect g ~src:br ~src_port:1 ~dst:snk ~dst_port:0);
  ignore (G.connect g ~src:src2 ~src_port:0 ~dst:j ~dst_port:1);
  ignore (G.connect g ~src:j ~src_port:0 ~dst:exit_ ~dst_port:0);
  let r = E.run ~config:{ E.max_cycles = 1000; deadlock_window = 20 } g in
  check Alcotest.bool "deadlocked" true r.E.deadlocked;
  check Alcotest.bool "not finished" false r.E.finished

let test_transparent_buffer_no_latency () =
  let g = G.create "tbuf" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let c = G.add_unit g ~width:8 (K.Const 7) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:c ~dst_port:0);
  let cid = G.connect g ~src:c ~src_port:0 ~dst:exit_ ~dst_port:0 in
  G.set_buffer g cid (Some { G.transparent = true; slots = 1 });
  let r = E.run g in
  check Alcotest.int "still one cycle" 1 r.E.cycles

let test_opaque_buffer_adds_latency () =
  let g = G.create "obuf" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let c = G.add_unit g ~width:8 (K.Const 7) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:c ~dst_port:0);
  let cid = G.connect g ~src:c ~src_port:0 ~dst:exit_ ~dst_port:0 in
  G.set_buffer g cid (Some { G.transparent = false; slots = 2 });
  let r = E.run g in
  check Alcotest.int "two cycles" 2 r.E.cycles

let suite =
  [
    ("straight line", `Quick, test_straightline);
    ("loop counts to ten", `Quick, test_loop_counts_to_ten);
    ("unbuffered loop rejected", `Quick, test_loop_unbuffered_fails);
    ("extra buffer slows loop", `Quick, test_extra_buffer_slows_loop);
    ("pipelined multiplier", `Quick, test_pipelined_mul);
    ("memory store/load", `Quick, test_memory_store_load);
    ("no spurious deadlock", `Quick, test_deadlock_detected);
    ("true deadlock detected", `Quick, test_true_deadlock);
    ("transparent buffer latency-free", `Quick, test_transparent_buffer_no_latency);
    ("opaque buffer adds a cycle", `Quick, test_opaque_buffer_adds_latency);
  ]
