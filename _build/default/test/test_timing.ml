module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module M = Timing.Model
module LM = Timing.Lut_map

let check = Alcotest.check

let synth_map g =
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  (net, lg)

(* ------------------------------------------------------------------ *)
(* LUT-to-DFG mapping structure *)

let test_lutmap_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net, lg = synth_map g in
  let tg = LM.build g ~net lg in
  check Alcotest.int "one delay node per LUT" (Techmap.Lutgraph.n_luts lg) tg.LM.n_real;
  check Alcotest.bool "launch and capture exist" true (tg.LM.launch <> tg.LM.capture)

let test_lutmap_acyclic () =
  (* private routing decorations guarantee a DAG even on looped kernels *)
  let k = Hls.Kernels.by_name "gsum" in
  let g = Hls.Kernels.graph k in
  let _ = Core.Flow.seed_back_edges g in
  let net, lg = synth_map g in
  let tg = LM.build g ~net lg in
  let model = Timing.Generate.run tg g in
  check Alcotest.bool "pairs nonempty" true (model.M.pairs <> [])

let test_shortest_unbuffered_blocks () =
  let g, back = Fixtures.loop () in
  (* the buffered back edge must not be traversable *)
  let c = G.channel g back in
  match LM.shortest_unbuffered g ~src:c.G.src ~dst:c.G.dst with
  | Some path -> check Alcotest.bool "does not use the buffered channel" false (List.mem back path)
  | None -> ()

let test_shortest_unbuffered_fewest_units () =
  let g, fork, _, _, branch = Fixtures.fig2 () in
  match LM.shortest_unbuffered g ~src:fork ~dst:branch with
  | Some path -> check Alcotest.int "fewest units path" 2 (List.length path)
  | None -> Alcotest.fail "expected path"

(* ------------------------------------------------------------------ *)
(* Timing model generation *)

let model_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net, lg = synth_map g in
  (g, Timing.Mapping_aware.build g ~net lg)

let test_model_pairs_nonneg () =
  let _, model = model_fig2 () in
  List.iter
    (fun p -> Alcotest.(check bool) "delay >= 0" true (p.M.p_delay >= 0.))
    model.M.pairs

let test_model_channels_in_play () =
  let g, model = model_fig2 () in
  List.iter
    (fun c -> Alcotest.(check bool) "valid channel" true (c >= 0 && c < G.n_channels g))
    (M.channels_in_play model)

let test_model_has_reg_endpoints () =
  let _, model = model_fig2 () in
  let has_launch =
    List.exists (fun p -> M.terminal_equal p.M.p_src M.T_reg) model.M.pairs
  in
  let has_capture =
    List.exists (fun p -> M.terminal_equal p.M.p_dst M.T_reg) model.M.pairs
  in
  check Alcotest.bool "launch pairs" true has_launch;
  check Alcotest.bool "capture pairs" true has_capture

(* The paper's §IV-C worked example: a unit whose logic is entirely
   absorbed downstream (the constant-shift "shifter") yields penalty 1 on
   its outgoing channel, while channels from units with their own LUTs
   have lower penalty. *)
let test_penalty_absorbed_unit () =
  let g = G.create "absorb" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let ef = G.add_unit g ~width:0 (K.Fork 2) in
  let v = G.add_unit g ~width:8 (K.Const 5) in
  let amt = G.add_unit g ~width:8 (K.Const 1) in
  let vf = G.add_unit g ~width:8 (K.Fork 2) in
  let shl = G.add_unit g ~width:8 ~label:"shl" (K.operator Dataflow.Ops.Shl) in
  let add = G.add_unit g ~width:8 ~label:"add" (K.operator Dataflow.Ops.Add) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:ef ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:0 ~dst:v ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:1 ~dst:amt ~dst_port:0);
  ignore (G.connect g ~src:v ~src_port:0 ~dst:vf ~dst_port:0);
  ignore (G.connect g ~src:vf ~src_port:0 ~dst:shl ~dst_port:0);
  ignore (G.connect g ~src:amt ~src_port:0 ~dst:shl ~dst_port:1);
  let c_shl_add = G.connect g ~src:shl ~src_port:0 ~dst:add ~dst_port:0 in
  ignore (G.connect g ~src:vf ~src_port:1 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:exit_ ~dst_port:0);
  (* register the constant source so the datapath sees free FF outputs
     instead of constants (otherwise everything folds away) *)
  (match G.out_channel g v 0 with
  | Some cid -> G.set_buffer g cid (Some { G.transparent = false; slots = 2 })
  | None -> assert false);
  let net, lg = synth_map g in
  (* the shifter's datapath (shift by constant 1) is pure rewiring: no
     LUT should be labelled with it *)
  let shl_luts = Techmap.Lutgraph.luts_of_unit lg shl in
  let data_luts = List.filter (fun l -> l.Techmap.Lutgraph.dom = Net.Data) shl_luts in
  check Alcotest.int "no datapath LUTs in the shifter" 0 (List.length data_luts);
  let model = Timing.Mapping_aware.build g ~net lg in
  check Alcotest.bool "shl->add channel penalised" true (model.M.penalty.(c_shl_add) > 0.)

let test_fake_nodes_on_traversed_units () =
  let _, model = model_fig2 () in
  check Alcotest.bool "fake nodes exist" true (model.M.fake_nodes > 0)

(* ------------------------------------------------------------------ *)
(* Pre-characterised baseline *)

let test_precharacterized_positive_delays () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  G.iter_units g (fun n ->
      match n.G.kind with
      | K.Operator _ ->
        Alcotest.(check bool)
          (n.G.label ^ " has positive delay")
          true
          (Timing.Precharacterized.unit_delay g n.G.uid > 0.)
      | _ -> ())

let test_precharacterized_cache_stable () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let adds = G.find_units g (fun n -> match n.G.kind with K.Operator _ -> true | _ -> false) in
  match adds with
  | u :: _ ->
    let d1 = Timing.Precharacterized.unit_delay g u in
    let d2 = Timing.Precharacterized.unit_delay g u in
    check (Alcotest.float 1e-9) "cached" d1 d2
  | [] -> Alcotest.fail "no operator"

let test_precharacterized_model () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let model = Timing.Precharacterized.build g in
  check Alcotest.bool "pairs nonempty" true (model.M.pairs <> []);
  Array.iter (fun p -> Alcotest.(check (float 1e-9)) "no penalties" 0. p) model.M.penalty

(* The central claim of the paper: the pre-characterised model is more
   conservative than the mapping-aware one — its worst path estimates
   dominate. *)
let test_baseline_more_conservative () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net, lg = synth_map g in
  let aware = Timing.Mapping_aware.build g ~net lg in
  let precharacterized = Timing.Precharacterized.build g in
  let total m = List.fold_left (fun acc p -> acc +. p.M.p_delay) 0. m.M.pairs in
  let avg m = total m /. float_of_int (max 1 (List.length m.M.pairs)) in
  check Alcotest.bool "baseline avg pair delay dominates" true
    (avg precharacterized >= avg aware)

let suite =
  [
    ("lutmap fig2 structure", `Quick, test_lutmap_fig2);
    ("lutmap acyclic on loops", `Quick, test_lutmap_acyclic);
    ("path search respects buffers", `Quick, test_shortest_unbuffered_blocks);
    ("path search fewest units", `Quick, test_shortest_unbuffered_fewest_units);
    ("model pair delays nonnegative", `Quick, test_model_pairs_nonneg);
    ("model channels valid", `Quick, test_model_channels_in_play);
    ("model has register endpoints", `Quick, test_model_has_reg_endpoints);
    ("penalty of absorbed unit", `Quick, test_penalty_absorbed_unit);
    ("fake nodes on traversed units", `Quick, test_fake_nodes_on_traversed_units);
    ("precharacterized delays positive", `Quick, test_precharacterized_positive_delays);
    ("precharacterized cache", `Quick, test_precharacterized_cache_stable);
    ("precharacterized model shape", `Quick, test_precharacterized_model);
    ("baseline more conservative", `Quick, test_baseline_more_conservative);
  ]
