(* Command-line driver for the mapping-aware frequency-regulation flow.

   regulate list
   regulate show <kernel> [--dot FILE]
   regulate flow <kernel> [--flavor iterative|baseline] [--levels N]
   regulate compare <kernel> ...
*)

open Cmdliner

let kernels_arg =
  let doc = "Benchmark kernel name (see `regulate list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for multi-kernel runs (default: the $(b,REPRO_JOBS) environment variable, \
     else 1). Results and output order are identical at any width."
  in
  let width =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | Some _ -> Error (`Msg "jobs must be >= 1")
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt width (Support.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Profile the run and write Chrome trace-event JSON to $(docv) (load in chrome://tracing or \
     Perfetto). The per-stage summary table goes to stderr; stdout is byte-identical with and \
     without tracing. Missing parent directories are created."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let cache_dir_arg =
  let doc =
    "Artifact cache directory (overrides the $(b,REPRO_CACHE) environment variable). Synthesis \
     and LUT-mapping results, pre-characterised unit delays and MILP solutions are stored \
     content-addressed and reused across runs, processes and $(b,--jobs) domains; stdout is \
     byte-identical with and without the cache. See `regulate cache` for stats and maintenance."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cycle_cap_arg =
  let doc =
    "Simple-cycle enumeration cap for CFDFC extraction and the certifier (default: the \
     $(b,REPRO_CYCLE_CAP) environment variable, else 512 for the certifier / 256 for CFDFCs). \
     Raise it so a cycle-rich kernel's enumeration is exhaustive and the \
     $(b,perf-cycle-limit-truncated) warning clears; the cost is MILP rows per extra cycle."
  in
  Arg.(value & opt (some int) None & info [ "cycle-cap" ] ~docv:"N" ~doc)

let milp_nodes_arg =
  let doc =
    "Per-solve MILP branch-and-bound node budget (default 50000). A solve that exhausts it \
     fails with a clean $(b,node budget exhausted) error instead of running unbounded."
  in
  let nodes_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "--milp-nodes must be >= 1")
      | None -> Error (`Msg (Printf.sprintf "--milp-nodes: expected an integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some nodes_conv) None & info [ "milp-nodes" ] ~docv:"N" ~doc)

let milp_budget_arg =
  let doc =
    "Per-solve MILP wall-clock budget in seconds (default 120). Exhaustion is reported like a \
     node-budget blowout: a clean error, never a hang."
  in
  let budget_conv =
    let parse s =
      match float_of_string_opt s with
      | Some f when f > 0. -> Ok f
      | Some _ -> Error (`Msg "--milp-budget-s must be > 0")
      | None -> Error (`Msg (Printf.sprintf "--milp-budget-s: expected a number, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  Arg.(value & opt (some budget_conv) None & info [ "milp-budget-s" ] ~docv:"SECONDS" ~doc)

let no_narrow_arg =
  let doc =
    "Disable the abstract-interpretation narrowing stage (on by default: the flow shrinks unit \
     widths to their proven value envelopes, folds constant units and deletes dead branches \
     before synthesis, gated by random-simulation equivalence). See `regulate absint`."
  in
  Arg.(value & flag & info [ "no-narrow" ] ~doc)

(* Enable the artifact cache around [f] when a directory was configured
   (flag first, then $REPRO_CACHE); the session's counters are appended
   to the store's stats.log whichever way [f] exits. *)
let with_cache dir f =
  match Cache.Control.resolve_dir ~flag:dir with
  | None -> f ()
  | Some d -> (
    match Cache.Control.enable d with
    | exception Sys_error msg -> Error (`Msg ("--cache-dir: " ^ msg))
    | _store -> Fun.protect ~finally:Cache.Control.finish f)

(* Open an output file named by a CLI flag: create missing parent
   directories, and turn an unwritable path into a cmdliner `Msg error
   (clean usage-style message) instead of an exception backtrace. *)
let with_out_file path f =
  match
    Support.Trace.ensure_parent_dir path;
    Out_channel.with_open_text path f
  with
  | v -> Ok v
  | exception Sys_error msg -> Error (`Msg msg)

(* Run [f] under a trace session when [--trace] was given: the whole
   command becomes one top-level span, the JSON sink lands in [path]
   and the summary table goes to stderr (stdout untouched). *)
let traced ~name trace f =
  match trace with
  | None -> Ok (f ())
  | Some path ->
    Support.Trace.start ();
    (match Support.Trace.with_span ~cat:"cli" name f with
    | v -> (
      let report = Support.Trace.stop () in
      match Support.Trace.write_chrome_json report path with
      | () ->
        Format.eprintf "%a" Support.Trace.pp_summary report;
        Format.eprintf "[trace] wrote %s@." path;
        Ok v
      | exception Sys_error msg -> Error (`Msg msg))
    | exception e ->
      ignore (Support.Trace.stop ());
      raise e)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun k ->
        let g = Hls.Kernels.graph k in
        Printf.printf "%-15s %3d units %3d channels\n" k.Hls.Kernels.name
          (Dataflow.Graph.n_units g) (Dataflow.Graph.n_channels g))
      Hls.Kernels.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark kernels.") Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write Graphviz to $(docv).")
  in
  let run name dot =
    let k = Hls.Kernels.by_name name in
    let g = Hls.Kernels.graph k in
    Printf.printf "%s: %d units, %d channels, %d marked back edges\n" name
      (Dataflow.Graph.n_units g) (Dataflow.Graph.n_channels g)
      (List.length (Dataflow.Graph.marked_back_edges g));
    let net = Elaborate.run (let g' = Dataflow.Graph.copy g in ignore (Core.Flow.seed_back_edges g'); g') in
    let synth = Techmap.Synth.run net in
    let lg = Techmap.Mapper.run synth in
    Printf.printf "seeded circuit: %d gates, %d FFs, %d LUTs, %d levels\n" (Net.n_gates net)
      (Net.count_ffs net) (Techmap.Lutgraph.n_luts lg) lg.Techmap.Lutgraph.max_level;
    match dot with
    | None -> Ok ()
    | Some file ->
      Result.map
        (fun () -> Printf.printf "wrote %s\n" file)
        (with_out_file file (fun oc -> Dataflow.Dot.to_channel oc g))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print kernel circuit statistics.")
    (Term.term_result Term.(const run $ kernels_arg $ dot))

(* ---- flow ---- *)

let flow_cmd =
  let flavor =
    let flavor_conv = Arg.enum [ ("iterative", `Iterative); ("baseline", `Baseline) ] in
    Arg.(value & opt flavor_conv `Iterative & info [ "flavor" ] ~docv:"FLAVOR" ~doc:"iterative or baseline.")
  in
  let levels =
    Arg.(value & opt int 6 & info [ "levels" ] ~docv:"N" ~doc:"Target logic levels (default 6).")
  in
  let routing = Arg.(value & flag & info [ "routing-aware" ] ~doc:"Fold placement wire estimates into the model.") in
  let slack = Arg.(value & flag & info [ "slack-match" ] ~doc:"Pad reconvergent paths with transparent capacity.") in
  let balance = Arg.(value & flag & info [ "balance" ] ~doc:"Run AND re-association before mapping.") in
  let tv_exact =
    Arg.(
      value & flag
      & info [ "tv-exact" ]
          ~doc:
            "Confirm every translation-validation signature mismatch by scalar replay and \
             exhaustive evaluation of the offending LUT cone (the cheap signature gates always \
             run).")
  in
  let digest =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:
            "Also print $(b,digest=)$(i,HEX): the canonical digest of the flow outcome (circuit \
             plus every per-iteration decision), byte-comparable against the $(b,done) events of \
             `regulate serve`.")
  in
  let run name flavor levels routing slack balance tv_exact no_narrow digest milp_nodes
      milp_budget_s trace cache_dir =
    let k = Hls.Kernels.by_name name in
    let config =
      {
        Core.Flow.default_config with
        Core.Flow.target_levels = levels;
        routing_aware = routing;
        slack_match = slack;
        balance;
        tv_exact;
        narrow = not no_narrow;
        milp =
          {
            Core.Flow.default_config.Core.Flow.milp with
            Buffering.Formulation.cp_target = float_of_int levels *. 0.7;
          };
      }
    in
    with_cache cache_dir @@ fun () ->
    traced ~name:"regulate:flow" trace @@ fun () ->
    let session =
      Core.Session.make ~cache:(Cache.Control.session ()) ?milp_nodes ?milp_budget_s ()
    in
    let metrics, outcome = Core.Experiment.run_flow ~config ~session ~flavor k in
    List.iter
      (fun (it : Core.Flow.iteration) ->
        Printf.printf
          "iteration %d: %d pairs, %d delay nodes (%d fake), %d buffers proposed, levels=%d%s\n"
          it.Core.Flow.it_index it.Core.Flow.model_pairs it.Core.Flow.delay_nodes
          it.Core.Flow.fake_nodes it.Core.Flow.proposed_buffers it.Core.Flow.achieved_levels
          (if it.Core.Flow.kept_as_fixed > 0 then
             Printf.sprintf " -> keeping %d sparse min-penalty buffers" it.Core.Flow.kept_as_fixed
           else "")
      )
      outcome.Core.Flow.iterations;
    (match outcome.Core.Flow.narrowing with
    | Some r when Absint.Narrow.changed r ->
      Printf.printf "narrowing: %d widths shrunk, %d folded, %d rewired, %d deleted (%d -> %d channel bits)\n"
        (List.length r.Absint.Narrow.r_narrowed)
        (List.length r.Absint.Narrow.r_folded)
        (List.length r.Absint.Narrow.r_rewired)
        (List.length r.Absint.Narrow.r_deleted)
        r.Absint.Narrow.r_bits_before r.Absint.Narrow.r_bits_after
    | _ -> ());
    (match List.rev outcome.Core.Flow.iterations with
    | last :: _ ->
      Format.printf "throughput: milp phi=%.4f vs %a@." last.Core.Flow.milp_phi
        Analysis.Certify.pp outcome.Core.Flow.certified
    | [] -> ());
    Printf.printf
      "final: levels=%d (target %d, met=%b) buffers=%d cp=%.2fns cycles=%d exec=%.0fns luts=%d ffs=%d ok=%b\n"
      metrics.Core.Experiment.levels levels metrics.Core.Experiment.met_target
      metrics.Core.Experiment.buffers metrics.Core.Experiment.cp metrics.Core.Experiment.cycles
      metrics.Core.Experiment.exec_ns metrics.Core.Experiment.luts metrics.Core.Experiment.ffs
      metrics.Core.Experiment.value_ok;
    if digest then Printf.printf "digest=%s\n" (Serve.Protocol.outcome_digest outcome)
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Run one buffering flow on one kernel.")
    (Term.term_result
       Term.(
         const run $ kernels_arg $ flavor $ levels $ routing $ slack $ balance $ tv_exact
         $ no_narrow_arg $ digest $ milp_nodes_arg $ milp_budget_arg $ trace_arg
         $ cache_dir_arg))

(* ---- export ---- *)

let export_cmd =
  let run name =
    let k = Hls.Kernels.by_name name in
    let outcome = Core.Flow.iterative (Hls.Kernels.graph k) in
    let g = outcome.Core.Flow.graph in
    Out_channel.with_open_text (name ^ ".dot") (fun oc -> Dataflow.Dot.to_channel oc g);
    let net = Elaborate.run g in
    let synth = Techmap.Synth.run net in
    let lg = Techmap.Mapper.run synth in
    Out_channel.with_open_text (name ^ ".blif") (fun oc -> Techmap.Blif.to_channel oc net lg);
    let r =
      Out_channel.with_open_text (name ^ ".vcd") (fun oc ->
          Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) ~vcd:oc g)
    in
    Printf.printf "wrote %s.dot %s.blif %s.vcd (%d cycles)\n" name name name r.Sim.Elastic.cycles
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Optimise a kernel and export DOT, BLIF and VCD artefacts.")
    Term.(const run $ kernels_arg)

(* ---- compile (user-provided mini-C file) ---- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file.")
  in
  let simulate =
    Arg.(value & flag & info [ "run" ] ~doc:"Also optimise and simulate (zero-initialised memories).")
  in
  let run file simulate =
    let src = In_channel.with_open_text file In_channel.input_all in
    let f =
      match Hls.Parser.parse src with
      | f -> f
      | exception e -> (
        match Hls.Parser.error_message e with
        | Some msg ->
          Printf.eprintf "%s: %s\n" file msg;
          exit 1
        | None -> raise e)
    in
    let g = Hls.Compile.compile f in
    Printf.printf "%s: %d units, %d channels, %d loops\n" f.Hls.Ast.fname
      (Dataflow.Graph.n_units g) (Dataflow.Graph.n_channels g)
      (List.length (Dataflow.Graph.marked_back_edges g));
    if simulate then begin
      let outcome = Core.Flow.iterative g in
      let r = Sim.Elastic.run outcome.Core.Flow.graph in
      let expected = Hls.Interp.run f ~args:[] ~memories:[] in
      Printf.printf
        "optimised: %d buffers, %d levels; simulated %d cycles -> %s (interpreter: %d)\n"
        outcome.Core.Flow.total_buffers outcome.Core.Flow.final_levels r.Sim.Elastic.cycles
        (match r.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
        expected
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a mini-C file to a dataflow circuit.")
    Term.(const run $ file $ simulate)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc:"Seed count (default 200).")
  in
  let start_seed =
    Arg.(value & opt int 0 & info [ "start-seed" ] ~docv:"N" ~doc:"First seed (default 0).")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-s" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget: stop submitting new kernel batches once exceeded. The kernels \
             already checked still count; the stats record the early stop.")
  in
  let mutate =
    Arg.(
      value & opt int 2
      & info [ "mutate" ] ~docv:"N"
          ~doc:"Additive DFG mutants derived per kernel per flavor (default 2, 0 disables).")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ] ~doc:"Report findings with the original (unshrunk) kernel source.")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Write one minimized repro fixture per finding into $(docv).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the campaign statistics (coverage and failure histograms) as JSON.")
  in
  let run seeds start_seed budget mutate no_minimize repro_dir json jobs trace cache_dir =
    with_cache cache_dir @@ fun () ->
    traced ~name:"regulate:fuzz" trace @@ fun () ->
    let result =
      Support.Pool.run ~jobs (fun pool ->
          Fuzz.Harness.run ~mutations:mutate ?budget_s:budget ~minimize:(not no_minimize)
            ~log:(fun l -> Printf.eprintf "%s\n%!" l)
            ~pool ~start_seed ~seeds ())
    in
    let s = result.Fuzz.Harness.stats in
    Printf.printf "fuzz: %d kernels checked in %.1fs%s: %d violations, %d explained\n"
      s.Fuzz.Harness.s_kernels s.Fuzz.Harness.s_duration_s
      (if s.Fuzz.Harness.s_budget_hit then " (budget hit)" else "")
      s.Fuzz.Harness.s_violations s.Fuzz.Harness.s_explained;
    Printf.printf "feature coverage:\n";
    List.iter
      (fun k ->
        let n = Option.value (List.assoc_opt k s.Fuzz.Harness.s_features) ~default:0 in
        Printf.printf "  %-12s %d\n" k n)
      Hls.Generate.feature_keys;
    if s.Fuzz.Harness.s_explained_by_kind <> [] then begin
      Printf.printf "explained (resource limits):\n";
      List.iter
        (fun (k, n) -> Printf.printf "  %-24s %d\n" k n)
        s.Fuzz.Harness.s_explained_by_kind
    end;
    List.iter
      (fun (f : Fuzz.Harness.finding) ->
        Printf.printf "\nFINDING seed=%d invariant=%s flavor=%s\n  %s\n" f.Fuzz.Harness.f_seed
          f.Fuzz.Harness.f_kind f.Fuzz.Harness.f_flavor f.Fuzz.Harness.f_detail;
        Printf.printf "minimized to %d statements:\n%s\n" f.Fuzz.Harness.f_min_stmts
          f.Fuzz.Harness.f_minimized;
        match repro_dir with
        | None -> ()
        | Some dir ->
          let path = Fuzz.Harness.write_repro ~dir f in
          Printf.printf "repro written to %s\n" path)
      result.Fuzz.Harness.findings;
    (match json with
    | None -> ()
    | Some path ->
      Support.Trace.ensure_parent_dir path;
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Fuzz.Harness.stats_to_json s);
          output_char oc '\n');
      Printf.printf "stats written to %s\n" path);
    if s.Fuzz.Harness.s_violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate seeded random kernels and pump them through both flows, checking the \
          differential oracle: interpreter/simulator equivalence, lint & tv gates, MILP claims \
          vs the certified bound, cache determinism and mutation robustness. Failures are \
          auto-minimized.")
    (Term.term_result
       Term.(
         const run $ seeds $ start_seed $ budget $ mutate $ no_minimize $ repro_dir $ json
         $ jobs_arg $ trace_arg $ cache_dir_arg))

(* ---- profile ---- *)

let profile_cmd =
  let run name =
    let k = Hls.Kernels.by_name name in
    let outcome = Core.Flow.iterative (Hls.Kernels.graph k) in
    let g = outcome.Core.Flow.graph in
    let r = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
    Printf.printf "%s: %d cycles, %d transfers\n\n" name r.Sim.Elastic.cycles r.Sim.Elastic.transfers;
    (* the ten most stalled channels: where more capacity would help *)
    let ranked =
      Array.to_list (Array.mapi (fun cid st -> (cid, st)) r.Sim.Elastic.channel_stats)
      |> List.sort (fun (_, a) (_, b) -> compare b.Sim.Elastic.cs_stalls a.Sim.Elastic.cs_stalls)
    in
    Printf.printf "most back-pressured channels (stall cycles):\n";
    List.iteri
      (fun i (cid, st) ->
        if i < 10 && st.Sim.Elastic.cs_stalls > 0 then begin
          let c = Dataflow.Graph.channel g cid in
          Printf.printf "  %-30s stalls=%-6d transfers=%d\n"
            (Printf.sprintf "%s -> %s"
               (Dataflow.Graph.unit_node g c.Dataflow.Graph.src).Dataflow.Graph.label
               (Dataflow.Graph.unit_node g c.Dataflow.Graph.dst).Dataflow.Graph.label)
            st.Sim.Elastic.cs_stalls st.Sim.Elastic.cs_transfers
        end)
      ranked;
    (* the placed critical path *)
    let net, lg = Core.Flow.synth_map Core.Flow.default_config g in
    let pr = Placeroute.Sta.analyze ~seed:7 net lg in
    Format.printf "@\n%a" (fun fmt () -> Placeroute.Sta.pp_critical_path fmt g lg pr) ()
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Simulate a kernel and report hot channels and the critical path.")
    Term.(const run $ kernels_arg)

(* ---- lint ---- *)

(* Runs every stage of the flow once (seed, elaborate, synthesise, map,
   model, MILP) purely to audit the artefacts with the lint rule set; no
   simulation or placement, so this is much cheaper than `flow`. *)
let lint_kernel ~levels ~cycle_cap k =
  let raw = Hls.Kernels.graph k in
  let pre = Lint.Engine.check_graph ~stage:Lint.Dfg_rules.Pre_buffering raw in
  let g = Dataflow.Graph.copy raw in
  ignore (Core.Flow.seed_back_edges g);
  let post = Lint.Engine.check_graph g in
  (* value-range family: needs the abstract-interpretation result; the
     inferred interval rides along in each diagnostic's extra field *)
  let r_ranges = Lint.Engine.check_ranges ~result:(Absint.Analyze.run g) g in
  let net = Elaborate.run g in
  let r_net = Lint.Engine.check_netlist g net in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run ~k:6 synth in
  let tg, model = Timing.Mapping_aware.build_with_graph g ~net lg in
  let r_map = Lint.Engine.check_mapping g lg tg model in
  let cp_target = float_of_int levels *. 0.7 in
  let milp_cfg = { Buffering.Formulation.default_config with cp_target } in
  let cfdfcs = Buffering.Cfdfc.extract ?cycle_limit:cycle_cap g in
  let r_milp, r_perf =
    match Buffering.Formulation.solve milp_cfg g model cfdfcs with
    | Error msg ->
      (Lint.Engine.of_diagnostics [ Lint.Milp_rules.solve_failure msg ], Lint.Engine.empty)
    | Ok p ->
      let r_milp =
        Lint.Engine.check_milp ~cp_target ~buffered:p.Buffering.Formulation.all_buffered model
          p.Buffering.Formulation.lp p.Buffering.Formulation.solution
      in
      (* the LP-free oracle: certify the placement the MILP proposed and
         audit its throughput claims against the certified bound *)
      let candidate = Dataflow.Graph.copy g in
      List.iter
        (fun c ->
          Dataflow.Graph.set_buffer candidate c
            (Some { Dataflow.Graph.transparent = false; slots = 2 }))
        p.Buffering.Formulation.new_buffers;
      let cert = Analysis.Certify.certify candidate in
      let truncated = List.exists (fun cf -> cf.Buffering.Cfdfc.truncated) cfdfcs in
      let phi =
        List.map2
          (fun (cf : Buffering.Cfdfc.t) th -> (cf.Buffering.Cfdfc.units, th))
          cfdfcs p.Buffering.Formulation.throughput
      in
      (r_milp, Lint.Engine.check_perf ~truncated ~phi cert candidate)
  in
  List.fold_left Lint.Engine.merge Lint.Engine.empty
    [ pre; post; r_ranges; r_net; r_map; r_milp; r_perf ]

let lint_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc:"Kernels (default: all nine).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let fail_on_warning =
    Arg.(value & flag & info [ "fail-on-warning" ] ~doc:"Exit non-zero on warnings too.")
  in
  let levels =
    Arg.(value & opt int 6 & info [ "levels" ] ~docv:"N" ~doc:"Target logic levels (default 6).")
  in
  let rules = Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit.") in
  let run names json fail_on_warning levels cycle_cap rules jobs =
    if rules then Format.printf "%a" Lint.Engine.pp_catalogue ()
    else begin
      let ks =
        match names with
        | [] -> Hls.Kernels.all
        | names -> List.map Hls.Kernels.by_name names
      in
      (* at --jobs 1 each kernel is linted as its report is printed, so
         big-kernel MILP solves still stream; wider pools fan the lint
         runs out and print in submission order, identical output *)
      let fold_reports f init =
        if jobs <= 1 then
          List.fold_left
            (fun acc k -> f acc k.Hls.Kernels.name (lint_kernel ~levels ~cycle_cap k))
            init ks
        else
          Support.Pool.run ~jobs (fun pool ->
              ks
              |> List.map (fun k ->
                     ( k.Hls.Kernels.name,
                       Support.Pool.submit pool (fun () -> lint_kernel ~levels ~cycle_cap k) ))
              |> List.fold_left (fun acc (name, fut) -> f acc name (Support.Pool.await fut)) init)
      in
      if json then print_string "[";
      let failed =
        fold_reports
          (fun (failed, i) name r ->
            if json then begin
              if i > 0 then print_string ",";
              print_string (Lint.Engine.report_to_json ~label:name r)
            end
            else Format.printf "%-15s %a@." name Lint.Engine.pp_report r;
            Format.print_flush ();
            flush stdout;
            ( failed
              || (not (Lint.Engine.ok r))
              || (fail_on_warning && not (Lint.Engine.clean r)),
              i + 1 ))
          (false, 0)
        |> fst
      in
      if json then print_endline "]";
      if failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify kernels: DFG structure, netlist, LUT mapping, MILP certificate.")
    Term.(const run $ names $ json $ fail_on_warning $ levels $ cycle_cap_arg $ rules $ jobs_arg)

(* A repeated kernel name would be run (and reported) twice for no new
   information; keep the first occurrence and warn on stderr so stdout
   stays a clean report. *)
let dedupe_kernel_names ~cli names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then begin
        Printf.eprintf "[%s] warning: duplicate kernel %S ignored\n%!" cli n;
        false
      end
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

(* ---- absint ---- *)

(* The value-range analysis as a first-class surface: run the abstract
   interpreter over a kernel's seeded graph, print every unit's proven
   output envelope, what the verified narrowing pass does with it, and
   the range-* lint findings. Pure graph analysis — no synthesis, MILP
   or simulation — so it is fast enough to run over the whole suite in
   CI. *)
let absint_kernel k =
  let g = Dataflow.Graph.copy (Hls.Kernels.graph k) in
  ignore (Core.Flow.seed_back_edges g);
  let res = Absint.Analyze.run g in
  let _, report = Absint.Narrow.run res g in
  let lint = Lint.Engine.check_ranges ~result:res g in
  (g, res, report, lint)

let absint_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc:"Kernels (default: all nine).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let run names json =
    let ks =
      match dedupe_kernel_names ~cli:"regulate" names with
      | [] -> Hls.Kernels.all
      | names -> List.map Hls.Kernels.by_name names
    in
    if json then print_string "[";
    let failed =
      List.fold_left
        (fun (failed, i) k ->
          let name = k.Hls.Kernels.name in
          let g, res, report, lint = absint_kernel k in
          let unit_ranges =
            List.init (Dataflow.Graph.n_units g) (fun uid ->
                let n = Dataflow.Graph.unit_node g uid in
                let outs =
                  Array.to_list n.Dataflow.Graph.outs
                  |> List.filter_map (fun c -> c)
                  |> List.map (fun cid ->
                         Absint.Value.to_string ~width:n.Dataflow.Graph.width
                           (Absint.Analyze.value res cid))
                in
                (n, outs))
          in
          if json then begin
            if i > 0 then print_string ",";
            let b = Buffer.create 4096 in
            Printf.bprintf b "{\"label\":\"%s\",\"diverged\":%b,\"evals\":%d,\"units\":["
              (Lint.Diagnostic.json_escape name)
              res.Absint.Analyze.diverged res.Absint.Analyze.evals;
            List.iteri
              (fun j (n, outs) ->
                if j > 0 then Buffer.add_char b ',';
                Printf.bprintf b "{\"uid\":%d,\"kind\":\"%s\",\"label\":\"%s\",\"width\":%d,\"outs\":[%s]}"
                  n.Dataflow.Graph.uid
                  (Lint.Diagnostic.json_escape (Dataflow.Unit_kind.name n.Dataflow.Graph.kind))
                  (Lint.Diagnostic.json_escape n.Dataflow.Graph.label)
                  n.Dataflow.Graph.width
                  (String.concat ","
                     (List.map (fun s -> "\"" ^ Lint.Diagnostic.json_escape s ^ "\"") outs)))
              unit_ranges;
            Printf.bprintf b
              "],\"narrowing\":{\"narrowed\":%d,\"folded\":%d,\"rewired\":%d,\"deleted\":%d,\"bits_before\":%d,\"bits_after\":%d,\"units_before\":%d,\"units_after\":%d},\"report\":%s}"
              (List.length report.Absint.Narrow.r_narrowed)
              (List.length report.Absint.Narrow.r_folded)
              (List.length report.Absint.Narrow.r_rewired)
              (List.length report.Absint.Narrow.r_deleted)
              report.Absint.Narrow.r_bits_before report.Absint.Narrow.r_bits_after
              report.Absint.Narrow.r_units_before report.Absint.Narrow.r_units_after
              (Lint.Engine.report_to_json lint);
            print_string (Buffer.contents b)
          end
          else begin
            Printf.printf "%s: %d units, %d evals%s\n" name (Dataflow.Graph.n_units g)
              res.Absint.Analyze.evals
              (if res.Absint.Analyze.diverged then " (DIVERGED: all values top)" else "");
            List.iter
              (fun (n, outs) ->
                if outs <> [] then
                  Printf.printf "  %3d %-12s %-24s w=%-2d %s\n" n.Dataflow.Graph.uid
                    (Dataflow.Unit_kind.name n.Dataflow.Graph.kind)
                    n.Dataflow.Graph.label n.Dataflow.Graph.width (String.concat " " outs))
              unit_ranges;
            Format.printf "%a@." Absint.Narrow.pp_report report;
            Format.printf "%a@." Lint.Engine.pp_report lint
          end;
          Format.print_flush ();
          flush stdout;
          (failed || not (Lint.Engine.ok lint), i + 1))
        (false, 0) ks
      |> fst
    in
    if json then print_endline "]";
    if failed then exit 1
  in
  Cmd.v
    (Cmd.info "absint"
       ~doc:
         "Run the abstract-interpretation value analysis over kernels: per-unit value envelopes \
          (intervals plus known bits), the verified narrowing report (width shrinks, constant \
          folds, dead-code deletions), and the range-* lint findings. Exits non-zero on any \
          range-* error.")
    Term.(const run $ names $ json)

(* ---- verify ---- *)

(* The throughput & liveness certifier as a first-class surface. The
   default mode is pure graph analysis (seed back-edge buffers, then
   certify): instant even on the biggest kernels, which is what CI runs
   across the whole suite. [--milp] additionally solves the
   pre-characterised buffer MILP and audits its phi claims against the
   certified bound of the placement it proposed. *)
let verify_kernel ~levels ~milp ~cycle_cap k =
  let g = Dataflow.Graph.copy (Hls.Kernels.graph k) in
  ignore (Core.Flow.seed_back_edges g);
  if not milp then begin
    let cert = Analysis.Certify.certify g in
    let _, truncated = Dataflow.Analysis.simple_cycles_capped ?limit:cycle_cap g in
    (cert, Lint.Engine.check_perf ~truncated ~phi:[] cert g)
  end
  else begin
    let model = Timing.Precharacterized.build g in
    let cfdfcs = Buffering.Cfdfc.extract ?cycle_limit:cycle_cap g in
    let truncated = List.exists (fun cf -> cf.Buffering.Cfdfc.truncated) cfdfcs in
    let cp_target = float_of_int levels *. 0.7 in
    let cfg = { Buffering.Formulation.default_config with cp_target; use_penalty = false } in
    match Buffering.Formulation.solve cfg g model cfdfcs with
    | Error msg ->
      (Analysis.Certify.certify g, Lint.Engine.of_diagnostics [ Lint.Milp_rules.solve_failure msg ])
    | Ok p ->
      let candidate = Dataflow.Graph.copy g in
      List.iter
        (fun c ->
          Dataflow.Graph.set_buffer candidate c
            (Some { Dataflow.Graph.transparent = false; slots = 2 }))
        p.Buffering.Formulation.new_buffers;
      let cert = Analysis.Certify.certify candidate in
      let phi =
        List.map2
          (fun (cf : Buffering.Cfdfc.t) th -> (cf.Buffering.Cfdfc.units, th))
          cfdfcs p.Buffering.Formulation.throughput
      in
      (cert, Lint.Engine.check_perf ~truncated ~phi cert candidate)
  end

let verify_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc:"Kernels (default: all nine).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let milp =
    Arg.(
      value & flag
      & info [ "milp" ]
          ~doc:
            "Also solve the pre-characterised buffer MILP and audit its throughput claims \
             against the certificate (slower on big kernels).")
  in
  let fail_on_warning =
    Arg.(value & flag & info [ "fail-on-warning" ] ~doc:"Exit non-zero on warnings too.")
  in
  let levels =
    Arg.(value & opt int 6 & info [ "levels" ] ~docv:"N" ~doc:"Target logic levels (default 6).")
  in
  let run names json milp fail_on_warning levels cycle_cap trace cache_dir =
    let ks =
      match dedupe_kernel_names ~cli:"regulate" names with
      | [] -> Hls.Kernels.all
      | names -> List.map Hls.Kernels.by_name names
    in
    (* Machine consumers must always receive the complete JSON document:
       a kernel whose certification throws is recorded as an error entry
       and the array is still closed before the non-zero exit, which
       itself happens only after the trace sink (if any) is written. *)
    let body () =
      if json then print_string "[";
      let failed =
        List.fold_left
          (fun (failed, i) k ->
            let name = k.Hls.Kernels.name in
            match verify_kernel ~levels ~milp ~cycle_cap k with
            | cert, r ->
              if json then begin
                if i > 0 then print_string ",";
                Printf.printf "{\"label\":\"%s\",\"certificate\":%s,\"report\":%s}"
                  (Lint.Diagnostic.json_escape name)
                  (Analysis.Certify.to_json cert)
                  (Lint.Engine.report_to_json r)
              end
              else begin
                Format.printf "%-15s %a (Howard/Karp %s)@." name Analysis.Certify.pp cert
                  (if Analysis.Certify.karp_agrees cert then "agree" else "DISAGREE");
                if r.Lint.Engine.diagnostics <> [] then
                  Format.printf "  %a@." Lint.Engine.pp_report r
              end;
              Format.print_flush ();
              flush stdout;
              ( failed
                || (not (Lint.Engine.ok r))
                || (fail_on_warning && not (Lint.Engine.clean r))
                || not (Analysis.Certify.karp_agrees cert),
                i + 1 )
            | exception e ->
              let msg = Printexc.to_string e in
              if json then begin
                if i > 0 then print_string ",";
                Printf.printf "{\"label\":\"%s\",\"error\":\"%s\"}"
                  (Lint.Diagnostic.json_escape name) (Lint.Diagnostic.json_escape msg)
              end
              else Format.printf "%-15s ERROR: %s@." name msg;
              Format.print_flush ();
              flush stdout;
              (true, i + 1))
          (false, 0) ks
        |> fst
      in
      if json then print_endline "]";
      failed
    in
    match with_cache cache_dir (fun () -> traced ~name:"regulate:verify" trace body) with
    | Error _ as e -> e
    | Ok failed -> if failed then exit 1 else Ok ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Certify kernel throughput bounds and liveness (LP-free Howard/Karp min cycle ratio); \
          with --milp, audit the MILP's claims against them.")
    (Term.term_result
       Term.(
         const run $ names $ json $ milp $ fail_on_warning $ levels $ cycle_cap_arg $ trace_arg
         $ cache_dir_arg))

(* ---- tv ---- *)

(* End-to-end translation validation as a first-class surface. Runs the
   full flow for a kernel (whose own tv gates already validate every
   intermediate iteration), then re-checks the final netlist / AIG / LUT
   cover triple once more to report its semantic signature and witness
   counts alongside the wall time. *)
let tv_kernel ~levels ~exact flavor k =
  let config =
    {
      Core.Flow.default_config with
      Core.Flow.target_levels = levels;
      tv_exact = exact;
      milp =
        {
          Core.Flow.default_config.Core.Flow.milp with
          Buffering.Formulation.cp_target = float_of_int levels *. 0.7;
        };
    }
  in
  let g = Hls.Kernels.graph k in
  let t0 = Unix.gettimeofday () in
  let res =
    match
      match flavor with
      | `Iterative -> Core.Flow.iterative ~config g
      | `Baseline -> Core.Flow.baseline ~config g
    with
    | outcome ->
      let ds, tv =
        Lint.Equiv_rules.check_translation ~exact outcome.Core.Flow.net outcome.Core.Flow.lutgraph
      in
      Ok (Lint.Engine.of_diagnostics ds, tv)
    | exception Lint.Engine.Lint_error report -> Error (`Lint report)
    | exception e -> Error (`Exn (Printexc.to_string e))
  in
  (res, (Unix.gettimeofday () -. t0) *. 1000.)

let tv_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc:"Kernels (default: all nine).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  let flavor =
    let fconv = Arg.enum [ ("iterative", `Iterative); ("baseline", `Baseline); ("both", `Both) ] in
    Arg.(
      value & opt fconv `Both
      & info [ "flavor" ] ~docv:"FLAVOR" ~doc:"iterative, baseline or both (default both).")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "tv-exact" ]
          ~doc:
            "Confirm every signature mismatch by scalar replay and exhaustive evaluation of the \
             offending LUT cone.")
  in
  let levels =
    Arg.(value & opt int 6 & info [ "levels" ] ~docv:"N" ~doc:"Target logic levels (default 6).")
  in
  let run names json flavor exact levels jobs trace cache_dir =
    let ks =
      match dedupe_kernel_names ~cli:"regulate" names with
      | [] -> Hls.Kernels.all
      | names -> List.map Hls.Kernels.by_name names
    in
    let flavors =
      match flavor with
      | `Both -> [ ("iterative", `Iterative); ("baseline", `Baseline) ]
      | `Iterative -> [ ("iterative", `Iterative) ]
      | `Baseline -> [ ("baseline", `Baseline) ]
    in
    let tasks = List.concat_map (fun k -> List.map (fun fl -> (k, fl)) flavors) ks in
    let body () =
      let results =
        if jobs <= 1 then
          List.map (fun (k, (fn, fl)) -> (k, fn, tv_kernel ~levels ~exact fl k)) tasks
        else
          Support.Pool.run ~jobs (fun pool ->
              tasks
              |> List.map (fun (k, (fn, fl)) ->
                     (k, fn, Support.Pool.submit pool (fun () -> tv_kernel ~levels ~exact fl k)))
              |> List.map (fun (k, fn, fut) -> (k, fn, Support.Pool.await fut)))
      in
      if json then print_string "[";
      let failed =
        List.fold_left
          (fun (failed, i) (k, fn, (res, ms)) ->
            let name = k.Hls.Kernels.name in
            let ok = match res with Ok (r, _) -> Lint.Engine.ok r | Error _ -> false in
            if json then begin
              if i > 0 then print_string ",";
              match res with
              | Ok (r, tv) ->
                Printf.printf
                  "{\"label\":\"%s\",\"flavor\":\"%s\",\"ok\":%b,\"wall_ms\":%.1f,\"luts\":%d,\"cos\":%d,\"vectors\":%d,\"signature\":\"%s\",\"report\":%s}"
                  (Lint.Diagnostic.json_escape name)
                  fn ok ms tv.Tv.Equiv.luts_checked tv.Tv.Equiv.cos_checked tv.Tv.Equiv.vectors
                  (Tv.Equiv.signature_hex tv) (Lint.Engine.report_to_json r)
              | Error (`Lint r) ->
                Printf.printf
                  "{\"label\":\"%s\",\"flavor\":\"%s\",\"ok\":false,\"wall_ms\":%.1f,\"report\":%s}"
                  (Lint.Diagnostic.json_escape name)
                  fn ms (Lint.Engine.report_to_json r)
              | Error (`Exn msg) ->
                Printf.printf
                  "{\"label\":\"%s\",\"flavor\":\"%s\",\"ok\":false,\"wall_ms\":%.1f,\"error\":\"%s\"}"
                  (Lint.Diagnostic.json_escape name)
                  fn ms (Lint.Diagnostic.json_escape msg)
            end
            else begin
              (match res with
              | Ok (r, tv) ->
                Printf.printf "%-15s %-9s %s luts=%-5d cos=%-4d vectors=%d sig=%s %7.1f ms\n" name
                  fn
                  (if ok then "ok  " else "FAIL")
                  tv.Tv.Equiv.luts_checked tv.Tv.Equiv.cos_checked tv.Tv.Equiv.vectors
                  (Tv.Equiv.signature_hex tv) ms;
                if not ok then Format.printf "  %a@." Lint.Engine.pp_report r
              | Error (`Lint r) ->
                Printf.printf "%-15s %-9s FAIL (lint gate) %7.1f ms\n" name fn ms;
                Format.printf "  %a@." Lint.Engine.pp_report r
              | Error (`Exn msg) -> Printf.printf "%-15s %-9s ERROR: %s %7.1f ms\n" name fn msg ms);
              Format.print_flush ()
            end;
            flush stdout;
            (failed || not ok, i + 1))
          (false, 0) results
        |> fst
      in
      if json then print_endline "]";
      failed
    in
    match with_cache cache_dir (fun () -> traced ~name:"regulate:tv" trace body) with
    | Error _ as e -> e
    | Ok failed -> if failed then exit 1 else Ok ()
  in
  Cmd.v
    (Cmd.info "tv"
       ~doc:
         "Translation-validate kernels end to end: combinational equivalence \
          (netlist/AIG/LUT-cover), label & domain soundness, and buffer-insertion refinement.")
    (Term.term_result
       Term.(
         const run $ names $ json $ flavor $ exact $ levels $ jobs_arg $ trace_arg $ cache_dir_arg))

(* ---- compare ---- *)

let compare_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc:"Kernels (default: all nine).")
  in
  let run names no_narrow milp_nodes milp_budget_s jobs trace cache_dir =
    let names =
      match dedupe_kernel_names ~cli:"regulate" names with [] -> None | names -> Some names
    in
    (* budgets land in the flow config, so the per-task ambient sessions
       the pool workers build see them uniformly *)
    let base = Core.Flow.default_config in
    let milp =
      {
        base.Core.Flow.milp with
        Buffering.Formulation.node_limit =
          Option.value milp_nodes ~default:base.Core.Flow.milp.Buffering.Formulation.node_limit;
        time_limit =
          Option.value milp_budget_s
            ~default:base.Core.Flow.milp.Buffering.Formulation.time_limit;
      }
    in
    let config = { base with Core.Flow.milp; narrow = not no_narrow } in
    with_cache cache_dir @@ fun () ->
    traced ~name:"regulate:compare" trace @@ fun () ->
    let rows = Core.Experiment.run_all_parallel ~config ~jobs ?names () in
    Core.Report.table1 Format.std_formatter rows;
    Format.print_newline ();
    Core.Report.figure5 Format.std_formatter rows;
    Format.print_newline ();
    Core.Report.iterations Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Reproduce Table I / Figure 5 for the given kernels.")
    (Term.term_result
       Term.(
         const run $ names $ no_narrow_arg $ milp_nodes_arg $ milp_budget_arg $ jobs_arg
         $ trace_arg $ cache_dir_arg))

(* ---- cache ---- *)

let cache_cmd =
  let dir_term =
    let resolve dir =
      match Cache.Control.resolve_dir ~flag:dir with
      | Some d -> Ok d
      | None -> Error (`Msg "no cache directory: pass --cache-dir or set REPRO_CACHE")
    in
    Term.(term_result (const resolve $ cache_dir_arg))
  in
  let stats_cmd =
    let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object.") in
    let run dir json =
      if json then print_endline (Cache.Store.stats_json dir)
      else begin
        let s = Cache.Store.disk_stats dir in
        let rate h m = if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m) in
        Printf.printf "cache %s\n" dir;
        Printf.printf "  entries   %d\n" s.Cache.Store.ds_entries;
        Printf.printf "  bytes     %d\n" s.Cache.Store.ds_bytes;
        Printf.printf "  sessions  %d\n" s.Cache.Store.ds_sessions;
        Printf.printf "  hits      %d\n" s.Cache.Store.ds_hits;
        Printf.printf "  misses    %d\n" s.Cache.Store.ds_misses;
        Printf.printf "  puts      %d\n" s.Cache.Store.ds_puts;
        Printf.printf "  hit rate  %.3f\n" (rate s.Cache.Store.ds_hits s.Cache.Store.ds_misses);
        match s.Cache.Store.ds_last with
        | None -> ()
        | Some (h, m, p) ->
          Printf.printf "  last session: hits %d misses %d puts %d (hit rate %.3f)\n" h m p
            (rate h m)
      end
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Report entry counts, sizes and hit rates for a cache directory.")
      Term.(const run $ dir_term $ json)
  in
  let gc_cmd =
    let max_bytes =
      let doc = "Evict entries (oldest last-use first) until at most $(docv) entry bytes remain." in
      Arg.(required & opt (some int) None & info [ "max-bytes" ] ~docv:"BYTES" ~doc)
    in
    let run dir max_bytes =
      let removed, freed = Cache.Store.gc dir ~max_bytes in
      Printf.printf "removed %d entries (%d bytes) from %s\n" removed freed dir
    in
    Cmd.v
      (Cmd.info "gc" ~doc:"Shrink a cache directory to a byte budget.")
      Term.(const run $ dir_term $ max_bytes)
  in
  let clear_cmd =
    let run dir =
      Cache.Store.clear dir;
      Printf.printf "cleared %s\n" dir
    in
    Cmd.v (Cmd.info "clear" ~doc:"Delete all cache entries and stats.") Term.(const run $ dir_term)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect and maintain the artifact cache (see --cache-dir / REPRO_CACHE).")
    [ stats_cmd; gc_cmd; clear_cmd ]

(* ---- serve ---- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix-domain socket bound at $(docv) (any number of concurrent clients) \
             instead of line-delimited JSON on stdin/stdout.")
  in
  let queue_limit =
    let doc =
      "Admission control: the maximum number of accepted-but-unfinished compile requests \
       (default 8). Requests beyond it are rejected with $(b,server-busy), not queued \
       unboundedly."
    in
    let limit_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some _ -> Error (`Msg "--queue-limit must be >= 1")
        | None -> Error (`Msg (Printf.sprintf "--queue-limit: expected an integer, got %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt limit_conv 8 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let levels =
    Arg.(
      value
      & opt (some int) None
      & info [ "levels" ] ~docv:"N"
          ~doc:"Server-wide target logic levels (requests may override per request).")
  in
  let run socket jobs queue_limit levels no_narrow milp_nodes milp_budget_s cache_dir =
    (* the daemon owns its cache session outright: no process-global
       Cache.Control state is involved, which is what lets one process
       serve concurrent requests against one shared store *)
    match
      match Cache.Control.resolve_dir ~flag:cache_dir with
      | None -> Ok Cache.Session.disabled
      | Some d -> (
        match Cache.Session.of_dir d with
        | s -> Ok s
        | exception Sys_error msg -> Error (`Msg ("--cache-dir: " ^ msg)))
    with
    | Error _ as e -> e
    | Ok cache ->
      let cfg =
        {
          Serve.Server.jobs;
          queue_limit;
          levels;
          milp_nodes;
          milp_budget_s;
          cache;
          flow = { Core.Flow.default_config with Core.Flow.narrow = not no_narrow };
        }
      in
      let t = Serve.Server.create cfg in
      (match socket with
      | None -> Serve.Server.serve_channels t stdin stdout
      | Some path ->
        Printf.eprintf "[serve] listening on %s (jobs=%d queue=%d cache=%s)\n%!" path jobs
          queue_limit
          (match Cache.Session.store cache with Some s -> Cache.Store.dir s | None -> "off");
        Serve.Server.serve_socket t path);
      Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile daemon: kernel-compilation requests as line-delimited JSON over \
          stdin/stdout or a Unix-domain socket, served concurrently on a worker pool sharing \
          one artifact cache. Responses carry the outcome digest, phi vs the certified bound \
          and measured metrics; budget blowouts and malformed requests are structured errors, \
          never crashes.")
    (Term.term_result
       Term.(
         const run $ socket $ jobs_arg $ queue_limit $ levels $ no_narrow_arg $ milp_nodes_arg
         $ milp_budget_arg $ cache_dir_arg))

(* ---- loadgen ---- *)

let loadgen_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")
  in
  let count =
    let count_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some _ -> Error (`Msg "-n must be >= 1")
        | None -> Error (`Msg (Printf.sprintf "-n: expected an integer, got %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt count_conv 200 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Request count (default 200).")
  in
  let window =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Pipelining window: at most $(docv) requests outstanding (default 4). Keep it at or \
             below the daemon's --queue-limit or requests bounce off admission control.")
  in
  let kernels =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"KERNEL" ~doc:"Kernels to cycle through (default: gsum).")
  in
  let flavor =
    let flavor_conv = Arg.enum [ ("iterative", `Iterative); ("baseline", `Baseline) ] in
    Arg.(
      value & opt flavor_conv `Iterative
      & info [ "flavor" ] ~docv:"FLAVOR" ~doc:"iterative or baseline.")
  in
  let levels =
    Arg.(
      value & opt (some int) None & info [ "levels" ] ~docv:"N" ~doc:"Per-request target levels.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the latency/throughput/hit-rate summary as one JSON object to $(docv).")
  in
  let compare_oneshot =
    Arg.(
      value & flag
      & info [ "compare-oneshot" ]
          ~doc:
            "Also run every distinct request shape through sequential one-shot $(b,regulate \
             flow --digest) processes and report the daemon's speedup; exits non-zero if any \
             served digest differs from its one-shot digest.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Send a shutdown to the daemon afterwards.")
  in
  let run socket count window kernels flavor levels milp_nodes milp_budget_s json
      compare_oneshot shutdown =
    let kernels = match kernels with [] -> [ "gsum" ] | ks -> ks in
    match
      List.find_opt (fun n -> match Hls.Kernels.by_name n with _ -> false | exception Not_found -> true) kernels
    with
    | Some bad -> Error (`Msg (Printf.sprintf "unknown kernel %S (see `regulate list`)" bad))
    | None ->
      let nk = List.length kernels in
      let requests =
        List.init count (fun i ->
            {
              Serve.Protocol.id = Printf.sprintf "r%d" (i + 1);
              kernel = Some (List.nth kernels (i mod nk));
              source = None;
              flavor;
              levels;
              milp_nodes;
              milp_budget_s;
            })
      in
      let res = Serve.Loadgen.run ~window ~socket requests in
      Printf.printf
        "loadgen: %d sent, %d completed, %d errors, %d rejected, %d cancelled in %.2fs\n"
        res.Serve.Loadgen.l_sent res.Serve.Loadgen.l_completed res.Serve.Loadgen.l_errors
        res.Serve.Loadgen.l_rejected res.Serve.Loadgen.l_cancelled res.Serve.Loadgen.l_wall_s;
      Printf.printf "latency: mean=%.1fms p50=%.1fms p99=%.1fms; throughput=%.2f req/s\n"
        res.Serve.Loadgen.l_mean_ms res.Serve.Loadgen.l_p50_ms res.Serve.Loadgen.l_p99_ms
        res.Serve.Loadgen.l_throughput;
      Printf.printf "cache: %d hits, %d misses (hit rate %.3f)\n" res.Serve.Loadgen.l_hits
        res.Serve.Loadgen.l_misses
        (Serve.Protocol.hit_rate res.Serve.Loadgen.l_hits res.Serve.Loadgen.l_misses);
      let comparison =
        if not compare_oneshot then Ok []
        else begin
          (* one sequential cold process per distinct request shape: the
             workflow the daemon replaces. Digests must agree shape by
             shape with everything the daemon served. *)
          let shape (r : Serve.Protocol.request) = { r with Serve.Protocol.id = "" } in
          let distinct =
            List.fold_left
              (fun acc r -> if List.mem (shape r) (List.map shape acc) then acc else r :: acc)
              [] requests
            |> List.rev
          in
          let one = Serve.Loadgen.run_oneshot ~exe:Sys.executable_name distinct in
          let oneshot_rps =
            if one.Serve.Loadgen.o_wall_s > 0. then
              float_of_int (List.length distinct) /. one.Serve.Loadgen.o_wall_s
            else 0.
          in
          let speedup =
            if oneshot_rps > 0. then res.Serve.Loadgen.l_throughput /. oneshot_rps else 0.
          in
          let mismatches =
            List.filter
              (fun (id, d) ->
                match
                  List.find_opt
                    (fun (r : Serve.Protocol.request) -> r.Serve.Protocol.id = id)
                    requests
                with
                | None -> false
                | Some r ->
                  let s = shape r in
                  List.exists
                    (fun (oid, od) ->
                      (match
                         List.find_opt
                           (fun (r' : Serve.Protocol.request) -> r'.Serve.Protocol.id = oid)
                           distinct
                       with
                      | Some r' -> shape r' = s
                      | None -> false)
                      && od <> d)
                    one.Serve.Loadgen.o_digests)
              res.Serve.Loadgen.l_digests
          in
          Printf.printf
            "one-shot: %d distinct runs in %.2fs (%.3f req/s) -> daemon speedup x%.1f\n"
            (List.length distinct) one.Serve.Loadgen.o_wall_s oneshot_rps speedup;
          if mismatches = [] then begin
            Printf.printf "digests: all %d served results byte-identical to one-shot runs\n"
              (List.length res.Serve.Loadgen.l_digests);
            Ok
              [
                ("oneshot_rps", Serve.Json.Num oneshot_rps);
                ("speedup", Serve.Json.Num speedup);
                ("digests_match", Serve.Json.Bool true);
              ]
          end
          else
            Error
              (`Msg
                (Printf.sprintf "digest mismatch on %d request(s), e.g. %s"
                   (List.length mismatches)
                   (fst (List.hd mismatches))))
        end
      in
      Result.bind comparison @@ fun extra ->
      (match json with
      | None -> ()
      | Some path ->
        Support.Trace.ensure_parent_dir path;
        Out_channel.with_open_text path (fun oc ->
            let base =
              match Serve.Loadgen.result_to_json res with
              | Serve.Json.Obj kvs -> kvs
              | j -> [ ("result", j) ]
            in
            output_string oc (Serve.Json.to_string (Serve.Json.Obj (base @ extra)));
            output_char oc '\n');
        Printf.printf "summary written to %s\n" path);
      if shutdown then Serve.Loadgen.shutdown ~socket;
      if res.Serve.Loadgen.l_completed < res.Serve.Loadgen.l_sent then
        Error (`Msg "not every request completed (errors, rejections or cancellations above)")
      else Ok ()
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a serving daemon with a pipelined request stream and report client-observed \
          p50/p99 latency, throughput and the cache hit rate; optionally race it against \
          sequential one-shot flows and cross-check outcome digests.")
    (Term.term_result
       Term.(
         const run $ socket $ count $ window $ kernels $ flavor $ levels $ milp_nodes_arg
         $ milp_budget_arg $ json $ compare_oneshot $ shutdown))

let () =
  let doc = "Mapping-aware iterative buffer placement for dataflow circuits (DAC'23 reproduction)." in
  let info = Cmd.info "regulate" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            show_cmd;
            flow_cmd;
            absint_cmd;
            lint_cmd;
            verify_cmd;
            tv_cmd;
            compare_cmd;
            cache_cmd;
            export_cmd;
            profile_cmd;
            compile_cmd;
            fuzz_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
