(* Reproduce the integer-MILP brute-force mismatch at generator seed 7622. *)
module Lp = Milp.Lp
module Bb = Milp.Bb

let () =
  let seed = int_of_string Sys.argv.(1) in
  let rng = Support.Rng.create seed in
  let n = 2 + Support.Rng.int rng 2 in
  let m = Lp.create "randint" in
  let vars =
    Array.init n (fun i -> Lp.add_var m ~kind:Lp.Integer ~hi:3. (Printf.sprintf "k%d" i))
  in
  for _ = 1 to 1 + Support.Rng.int rng 3 do
    let terms =
      Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 5) -. 2., v)) vars)
    in
    Lp.add_constr m terms
      (if Support.Rng.bool rng then Lp.Le else Lp.Ge)
      (float_of_int (Support.Rng.int rng 8) -. 2.)
  done;
  let obj =
    Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 9) -. 4., v)) vars)
  in
  Lp.set_objective m ~maximize:true obj;
  Printf.printf "n=%d constrs=%d\n" n (Lp.n_constrs m);
  for i = 0 to Lp.n_constrs m - 1 do
    let terms, rel, rhs = Lp.constr m i in
    let rel_s = match rel with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=" in
    Printf.printf "  row %d: %s %s %g\n" i
      (String.concat " + " (List.map (fun (c, v) -> Printf.sprintf "%g*k%d" c v) terms))
      rel_s rhs
  done;
  let obj_terms, _ = (fun () -> Lp.objective m) () |> fun (mx, t) -> (t, mx) in
  Printf.printf "obj: max %s\n"
    (String.concat " + " (List.map (fun (c, v) -> Printf.sprintf "%g*k%d" c v) obj_terms));
  let best = ref neg_infinity in
  let best_pt = Array.make n 0. in
  let point = Array.make n 0. in
  let rec enum i =
    if i = n then begin
      if Lp.feasible m point then
        if Lp.eval_expr obj point > !best then begin
          best := Lp.eval_expr obj point;
          Array.blit point 0 best_pt 0 n
        end
    end
    else
      for v = 0 to 3 do
        point.(i) <- float_of_int v;
        enum (i + 1)
      done
  in
  enum 0;
  Printf.printf "brute force best = %g at [%s]\n" !best
    (String.concat "; " (Array.to_list (Array.map string_of_float best_pt)));
  (match Milp.Simplex.solve m with
  | Milp.Simplex.Infeasible -> Printf.printf "simplex root: infeasible\n"
  | Milp.Simplex.Unbounded -> Printf.printf "simplex root: unbounded\n"
  | Milp.Simplex.Optimal { obj; x } ->
    Printf.printf "simplex root: optimal %g at [%s]\n" obj
      (String.concat "; " (Array.to_list (Array.map string_of_float x))));
  (match Bb.solve m with
  | Bb.Infeasible -> Printf.printf "bb: infeasible\n"
  | Bb.Unbounded -> Printf.printf "bb: unbounded\n"
  | Bb.Exhausted -> Printf.printf "bb: exhausted\n"
  | Bb.Optimal { obj = got; x; _ } ->
    Printf.printf "bb: optimal %g at [%s] feasible=%b\n" got
      (String.concat "; " (Array.to_list (Array.map string_of_float x)))
      (Lp.feasible m x));
  List.iter
    (fun v -> Format.printf "violation: %a@." (Lp.pp_violation m) v)
    (match Bb.solve m with Bb.Optimal { x; _ } -> Lp.violations m x | _ -> [])
