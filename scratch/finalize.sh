#!/bin/sh
cd /root/repo
dune exec bench/main.exe > bench_output.txt 2>&1
echo BENCH_DONE
dune exec bench/main.exe -- sweep >> bench_output.txt 2>&1
echo SWEEP_DONE
dune runtest --force --no-buffer > test_output.txt 2>&1
echo TESTS_DONE
