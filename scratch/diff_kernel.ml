(* Cross-check the production MILP path (revised simplex + warm starts +
   cert pruning) against a dense-reference branch & bound on the real
   kernel buffering MILPs: objectives must agree to tolerance. *)

module G = Dataflow.Graph
module F = Buffering.Formulation
open Milp

(* the pre-rewrite branch & bound, relaxations solved by the dense
   reference tableau *)
let dense_bb ?(node_limit = 200_000) ?(eps = 1e-6) ?initial lp =
  let maximize, obj_terms = Lp.objective lp in
  let sense = if maximize then 1. else -1. in
  let nv = Lp.n_vars lp in
  let int_vars =
    List.filter
      (fun v -> match Lp.var_kind lp v with Lp.Binary | Lp.Integer -> true | _ -> false)
      (List.init nv (fun i -> i))
  in
  let original_bounds = Array.init nv (fun v -> Lp.bounds lp v) in
  let restore () = Array.iteri (fun v (lo, hi) -> Lp.set_bounds lp v ~lo ~hi) original_bounds in
  let apply_fixes fixes =
    restore ();
    List.iter
      (fun (v, lo, hi) ->
        let cur_lo, cur_hi = Lp.bounds lp v in
        Lp.set_bounds lp v ~lo:(max lo cur_lo) ~hi:(min hi cur_hi))
      fixes
  in
  let frac x = abs_float (x -. Float.round x) in
  let most_fractional x =
    List.fold_left
      (fun best v ->
        let f = frac x.(v) in
        if f > eps then match best with Some (_, bf) when bf >= f -> best | _ -> Some (v, f)
        else best)
      None int_vars
  in
  let incumbent =
    ref
      (match initial with
      | Some x0 when Lp.feasible lp x0 -> Some (Lp.eval_expr obj_terms x0, Array.copy x0)
      | _ -> None)
  in
  let nodes = ref 0 in
  let pending = ref [ (infinity, ([] : (int * float * float) list)) ] in
  let better obj =
    match !incumbent with None -> true | Some (bo, _) -> sense *. obj > (sense *. bo) +. 1e-9
  in
  let result = ref `Running in
  while !result = `Running do
    match !pending with
    | [] -> result := `Done
    | (bound, fixes) :: rest ->
      pending := rest;
      if !nodes >= node_limit then result := `Done
      else begin
        incr nodes;
        let prune =
          match !incumbent with Some (bo, _) -> bound <= (sense *. bo) +. 1e-9 | None -> false
        in
        if not prune then begin
          apply_fixes fixes;
          match Dense_reference.solve lp with
          | Dense_reference.Infeasible | Dense_reference.Unbounded -> ()
          | Dense_reference.Optimal { obj; x } -> (
            if better obj then
              match most_fractional x with
              | None -> incumbent := Some (obj, Array.copy x)
              | Some (v, _) ->
                let f = Float.of_int (int_of_float (floor (x.(v) +. 1e-9))) in
                let lo, hi = original_bounds.(v) in
                let lo = List.fold_left (fun a (w, l, _) -> if w = v then max a l else a) lo fixes in
                let hi = List.fold_left (fun a (w, _, h) -> if w = v then min a h else a) hi fixes in
                let children = ref [] in
                if f >= lo -. 1e-9 then children := (sense *. obj, (v, lo, f) :: fixes) :: !children;
                if f +. 1. <= hi +. 1e-9 then
                  children := (sense *. obj, (v, f +. 1., hi) :: fixes) :: !children;
                (* best-first: keep the list sorted by bound, descending *)
                pending :=
                  List.sort (fun (a, _) (b, _) -> compare b a) (!children @ !pending))
        end
      end
  done;
  restore ();
  match !incumbent with
  | None -> None
  | Some (_, x) ->
    let x = Array.copy x in
    List.iter (fun v -> x.(v) <- Float.round x.(v)) int_vars;
    Some (Lp.eval_expr obj_terms x, x, !nodes)

let () =
  let name = Sys.argv.(1) in
  let levels = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let milp_cfg =
    { Core.Flow.default_config.Core.Flow.milp with F.cp_target = float_of_int levels *. 0.7 }
  in
  let k = Hls.Kernels.by_name name in
  let input = Hls.Kernels.graph k in
  let g = G.copy input in
  G.clear_buffers g;
  let back =
    match G.marked_back_edges g with [] -> Dataflow.Analysis.back_edges g | m -> m
  in
  List.iter (fun c -> G.set_buffer g c (Some { G.transparent = false; slots = 2 })) back;
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run ~k:6 synth in
  let _tg, model =
    Timing.Mapping_aware.build_with_graph ~lut_delay:0.7 ~lut_extra:(fun _ -> 0.) g ~net lg
  in
  let cfdfcs = Buffering.Cfdfc.extract g in
  match F.solve milp_cfg g model cfdfcs with
  | Error e -> Printf.printf "revised: error %s\n" e
  | Ok p ->
    Printf.printf "revised: objective=%.9g buffers=%d thetas=[%s]\n" p.F.objective
      (List.length p.F.all_buffered)
      (String.concat ";" (List.map (Printf.sprintf "%.4f") p.F.throughput));
    Printf.printf "lp dims: n_vars=%d n_constrs=%d\n" (Lp.n_vars p.F.lp)
      (Lp.n_constrs p.F.lp);
    if Sys.getenv_opt "DIMS_ONLY" <> None then exit 0;
    Printf.printf "revised solution feasible per Lp.feasible: %b\n"
      (Lp.feasible p.F.lp p.F.solution);
    (* seed the dense search with the revised incumbent: if it proves no
       strictly better point exists, the revised answer is optimal *)
    (match dense_bb ~initial:p.F.solution p.F.lp with
    | Some (obj, _, nodes) ->
      Printf.printf "dense:   objective=%.9g nodes=%d\n" obj nodes;
      let gap = abs_float (obj -. p.F.objective) in
      Printf.printf "gap=%.3g %s\n" gap (if gap < 1e-5 then "AGREE" else "DISAGREE")
    | None -> Printf.printf "dense:   no incumbent\n")
