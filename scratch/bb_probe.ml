(* Probe: how long does the production B&B need to close the gap on a
   kernel MILP when given a large budget?  Builds the same MILP as the
   flow, then re-runs Bb.solve with a 600s limit, seeded with the
   production incumbent.  MILP_BB_DEBUG=1 shows gap progress. *)

module G = Dataflow.Graph
module F = Buffering.Formulation
open Milp

let () =
  let name = Sys.argv.(1) in
  let levels = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let milp_cfg =
    { Core.Flow.default_config.Core.Flow.milp with F.cp_target = float_of_int levels *. 0.7 }
  in
  let k = Hls.Kernels.by_name name in
  let input = Hls.Kernels.graph k in
  let g = G.copy input in
  G.clear_buffers g;
  let back =
    match G.marked_back_edges g with [] -> Dataflow.Analysis.back_edges g | m -> m
  in
  List.iter (fun c -> G.set_buffer g c (Some { G.transparent = false; slots = 2 })) back;
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run ~k:6 synth in
  let _tg, model =
    Timing.Mapping_aware.build_with_graph ~lut_delay:0.7 ~lut_extra:(fun _ -> 0.) g ~net lg
  in
  let cfdfcs = Buffering.Cfdfc.extract g in
  match F.solve milp_cfg g model cfdfcs with
  | Error e -> Printf.printf "formulation: error %s\n" e
  | Ok p ->
    Printf.printf "production: objective=%.9g buffers=%d\n" p.F.objective
      (List.length p.F.all_buffered);
    Printf.printf "lp dims: n_vars=%d n_constrs=%d\n" (Lp.n_vars p.F.lp)
      (Lp.n_constrs p.F.lp);
    let t0 = Unix.gettimeofday () in
    (match
       Bb.solve ~node_limit:1_000_000 ~time_limit:600. ~initial:p.F.solution p.F.lp
     with
    | Bb.Optimal { obj; proved_optimal; nodes; _ } ->
      Printf.printf "probe: objective=%.9g proved=%b nodes=%d wall=%.1fs\n" obj
        proved_optimal nodes
        (Unix.gettimeofday () -. t0)
    | Bb.Infeasible -> print_endline "probe: infeasible"
    | Bb.Unbounded -> print_endline "probe: unbounded"
    | Bb.Exhausted -> print_endline "probe: exhausted")
