(* Exhaustive sweep of the integer-MILP brute-force property over a seed
   range (the QCheck test samples only 40 of these per run). *)
module Lp = Milp.Lp
module Bb = Milp.Bb

let run seed =
  let rng = Support.Rng.create seed in
  let n = 2 + Support.Rng.int rng 2 in
  let m = Lp.create "randint" in
  let vars =
    Array.init n (fun i -> Lp.add_var m ~kind:Lp.Integer ~hi:3. (Printf.sprintf "k%d" i))
  in
  for _ = 1 to 1 + Support.Rng.int rng 3 do
    let terms =
      Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 5) -. 2., v)) vars)
    in
    Lp.add_constr m terms
      (if Support.Rng.bool rng then Lp.Le else Lp.Ge)
      (float_of_int (Support.Rng.int rng 8) -. 2.)
  done;
  let obj =
    Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 9) -. 4., v)) vars)
  in
  Lp.set_objective m ~maximize:true obj;
  let best = ref neg_infinity in
  let point = Array.make n 0. in
  let rec enum i =
    if i = n then begin
      if Lp.feasible m point then best := max !best (Lp.eval_expr obj point)
    end
    else
      for v = 0 to 3 do
        point.(i) <- float_of_int v;
        enum (i + 1)
      done
  in
  enum 0;
  match Bb.solve m with
  | Bb.Infeasible -> !best = neg_infinity
  | Bb.Unbounded | Bb.Exhausted -> false
  | Bb.Optimal { obj = got; x; _ } -> Lp.feasible m x && abs_float (got -. !best) < 1e-5

let () =
  let lo = int_of_string Sys.argv.(1) and hi = int_of_string Sys.argv.(2) in
  let bad = ref 0 in
  for s = lo to hi do
    if not (run s) then begin
      incr bad;
      Printf.printf "MISMATCH at seed %d\n%!" s
    end
  done;
  Printf.printf "swept %d..%d: %d mismatches\n" lo hi !bad
